"""Extension experiment 4 -- the rotating network vs. percent faulty.

The paper's experiments fix the data sink; its system model (§2)
rotates it.  This extension sweeps the compromised fraction for the
full rotating multi-cluster network in three configurations:

* ``TIBFIT``   -- rotation with the §2 base-station trust hand-off;
* ``Amnesia``  -- rotation with each new CH starting from blank trust;
* ``Baseline`` -- rotation with majority voting in every CH.

Expected shape: the hand-off configuration dominates; amnesia sits
between TIBFIT and the baseline because each leadership period still
accumulates *some* state before discarding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.clusterctl.leach import LeachConfig
from repro.clusterctl.simulation import RotatingClusterSimulation
from repro.experiments.reporting import Series
from repro.experiments.runner import ProgressFn, SweepTask, run_sweep
from repro.sensors.specs import CorrectSpec, FaultSpec


@dataclass(frozen=True)
class Experiment4Config:
    """Parameters for the rotating-network sweep."""

    n_nodes: int = 100
    field_side: float = 100.0
    sensing_radius: float = 20.0
    r_error: float = 5.0
    lam: float = 0.25
    fault_rate: float = 0.1
    sigma_correct: float = 1.6
    sigma_faulty: float = 4.25
    faulty_drop_rate: float = 0.25
    fault_level: int = 0
    ch_fraction: float = 0.05
    ti_threshold: float = 0.5
    events_per_leadership: int = 8
    leadership_rounds: int = 6
    percent_faulty_values: Tuple[float, ...] = (10.0, 30.0, 45.0, 58.0)
    trials: int = 2
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.leadership_rounds <= 0:
            raise ValueError("leadership_rounds must be positive")


def run_point(
    config: Experiment4Config,
    percent_faulty: float,
    trial: int,
    use_trust: bool,
    transfer_trust: bool,
) -> float:
    """Accuracy of one rotating-network run at one sweep point."""
    seed = config.seed + 7919 * trial + int(10 * percent_faulty)
    rng = np.random.default_rng(seed)
    n_faulty = round(config.n_nodes * percent_faulty / 100.0)
    faulty = tuple(
        int(x)
        for x in rng.choice(config.n_nodes, size=n_faulty, replace=False)
    )
    sim = RotatingClusterSimulation(
        n_nodes=config.n_nodes,
        field_side=config.field_side,
        sensing_radius=config.sensing_radius,
        r_error=config.r_error,
        lam=config.lam,
        fault_rate=config.fault_rate,
        use_trust=use_trust,
        correct_spec=CorrectSpec(sigma=config.sigma_correct),
        fault_spec=FaultSpec(
            level=config.fault_level,
            drop_rate=config.faulty_drop_rate,
            sigma=config.sigma_faulty,
        ),
        faulty_ids=faulty,
        leach=LeachConfig(
            ch_fraction=config.ch_fraction,
            ti_threshold=config.ti_threshold,
        ),
        events_per_leadership=config.events_per_leadership,
        channel_loss=0.0,
        transfer_trust=transfer_trust,
        seed=seed,
        tracing=False,
    )
    sim.run(config.leadership_rounds)
    return sim.metrics().accuracy


def rotating_sweep(
    config: Experiment4Config = Experiment4Config(),
    *,
    workers: int = None,
    progress: ProgressFn = None,
) -> Dict[str, Series]:
    """The three-configuration sweep described in the module docstring.

    All three variants' ``(point, trial)`` grids are flattened into one
    task list so a worker pool stays saturated across variants.
    """
    variants = {
        "Rotating TIBFIT": (True, True),
        "Rotating Amnesia": (True, False),
        "Rotating Baseline": (False, True),
    }
    tasks = [
        SweepTask(
            fn=run_point,
            args=(config, pf, trial, use_trust, transfer),
            point=pf,
            trial=trial,
        )
        for use_trust, transfer in variants.values()
        for pf in config.percent_faulty_values
        for trial in range(config.trials)
    ]
    samples = run_sweep(tasks, workers=workers, progress=progress)
    out: Dict[str, Series] = {}
    cursor = 0
    for label in variants:
        series = Series(label=label)
        for pf in config.percent_faulty_values:
            series.add(pf, samples[cursor : cursor + config.trials])
            cursor += config.trials
        out[label] = series
    return out
