"""Unit tests for decision-provenance reconstruction.

The fixtures hand-build small span forests shaped exactly like the
emitters in the radio / window / voter / cluster-head produce them, so
each structural rule of :class:`ProvenanceIndex` is pinned down without
running a simulation (the end-to-end shape is covered by the
``exp2_provenance`` golden fixture and
``tests/experiments/test_observability.py``).
"""

import pytest

from repro.obs.provenance import ProvenanceIndex
from repro.obs.spans import SpanCollector


def span(i, parent, category, time=0.0, **args):
    return {
        "id": i,
        "parent": parent,
        "category": category,
        "time": time,
        "args": args,
    }


def location_forest():
    """One sensed event, three reports (one dropped), one decision."""
    return [
        span(1, 0, "event", 0.0, event_id=1, x=10.0, y=10.0),
        span(2, 1, "report", 0.0, node=5, message_id=100),
        span(3, 1, "report", 0.0, node=6, message_id=101),
        span(4, 1, "report", 0.0, node=7, message_id=102),
        span(5, 2, "radio.transmit", 0.0, receiver=99),
        span(6, 3, "radio.transmit", 0.0, receiver=99),
        span(7, 4, "radio.transmit", 0.0, receiver=99),
        span(8, 5, "radio.deliver", 0.1),
        span(9, 8, "window.open", 0.1, circle=1, expires_at=0.6),
        span(10, 8, "window.report", 0.1, circle=1, node=5),
        span(11, 6, "radio.deliver", 0.2),
        span(12, 11, "window.report", 0.2, circle=1, node=6),
        span(13, 7, "radio.drop", 0.2, reason="loss"),
        span(14, 9, "window.close", 0.6, circles=[1], reports=2),
        span(15, 14, "window.filter", 0.6, window=2, kept=[5, 6], gated=[]),
        span(
            16, 15, "window.cluster", 0.6,
            x=10.0, y=10.0, members=[5, 6], dissenters=[7],
        ),
        span(
            17, 16, "trust.vote", 0.6,
            occurred=True, tie=False, cti_r=1.9, cti_nr=0.9,
            reporters=[5, 6], non_reporters=[7],
            ti_r=[0.95, 0.95], ti_nr=[0.9], applied=True,
        ),
        span(18, 17, "trust.reward", 0.6, nodes=[5, 6], ti=[0.96, 0.96]),
        span(19, 17, "trust.penalize", 0.6, nodes=[7], ti=[0.85]),
        span(
            20, 16, "ch.decision", 0.6,
            decision_id=1, occurred=True, x=10.0, y=10.0,
            supporters=[5, 6], dissenters=[7],
        ),
        span(21, 20, "ch.diagnosis", 0.6, node=7, ti=0.25),
        span(22, 20, "radio.transmit", 0.6, receiver=5),
        span(23, 20, "radio.drop", 0.6, reason="loss"),
    ]


class TestDecisionProvenance:
    @pytest.fixture()
    def prov(self):
        return ProvenanceIndex(location_forest())

    def test_decision_ids(self, prov):
        assert prov.decision_ids() == [1]

    def test_unknown_decision_raises(self, prov):
        with pytest.raises(KeyError, match="decision_id=99"):
            prov.decision_provenance(99)

    def test_verdict_and_location(self, prov):
        record = prov.decision_provenance(1)
        assert record["type"] == "decision"
        assert record["span"] == 20
        assert record["occurred"] is True
        assert record["location"] == [10.0, 10.0]
        assert record["supporters"] == [5, 6]
        assert record["dissenters"] == [7]

    def test_evidence_traces_each_report_to_the_event(self, prov):
        evidence = prov.decision_provenance(1)["evidence"]
        assert [e["node"] for e in evidence] == [5, 6]
        by_node = {e["node"]: e for e in evidence}
        assert by_node[5] == {
            "node": 5,
            "window_report_span": 10,
            "deliver_span": 8,
            "transmit_span": 5,
            "report_span": 2,
            "message_id": 100,
            "event_id": 1,
            "quiet": False,
        }

    def test_dropped_report_is_the_missing_half(self, prov):
        dropped = prov.decision_provenance(1)["dropped_reports"]
        assert dropped == [{
            "node": 7,
            "message_id": 102,
            "reason": "loss",
            "drop_span": 13,
            "report_span": 4,
        }]

    def test_window_filter_and_cluster(self, prov):
        record = prov.decision_provenance(1)
        assert record["window"]["close_span"] == 14
        assert record["window"]["circles"] == [1]
        assert record["window"]["filter"]["kept"] == [5, 6]
        assert record["cluster"]["members"] == [5, 6]
        assert record["cluster"]["dissenters"] == [7]

    def test_vote_and_trust_transitions(self, prov):
        record = prov.decision_provenance(1)
        assert record["vote"]["cti_r"] == 1.9
        assert record["vote"]["ti_r"] == [0.95, 0.95]
        assert record["vote"]["applied"] is True
        assert record["trust"]["rewarded"]["nodes"] == [5, 6]
        assert record["trust"]["penalized"]["nodes"] == [7]
        assert record["trust"]["gate_penalized"] is None

    def test_diagnoses_and_announcement(self, prov):
        record = prov.decision_provenance(1)
        assert record["diagnoses"] == [
            {"node": 7, "ti": 0.25, "span": 21}
        ]
        # One announcement copy transmitted, one dropped at send (the
        # at-send drop parents straight under the decision span).
        assert record["announcement"] == {"transmits": 1, "dropped": 1}

    def test_to_records_yields_one_per_decision(self, prov):
        records = list(prov.to_records())
        assert len(records) == 1
        assert records[0]["decision_id"] == 1


class TestBinaryWindowScoping:
    def test_circle_minus_one_scopes_by_time_interval(self):
        # Binary mode reuses circle -1 for every window, so reports are
        # scoped to the window's open/close interval instead.
        forest = [
            span(1, 0, "event", 0.0, event_id=1),
            span(2, 1, "report", 0.0, node=1, message_id=1),
            span(3, 2, "radio.transmit", 0.0),
            span(4, 3, "radio.deliver", 0.1),
            span(5, 4, "window.open", 0.1, circle=-1, expires_at=0.6),
            span(6, 4, "window.report", 0.1, circle=-1, node=1),
            span(7, 5, "window.close", 0.6, circles=[-1], reports=1),
            # A later window's report must not leak into the first.
            span(8, 0, "event", 2.0, event_id=2),
            span(9, 8, "report", 2.0, node=2, message_id=2),
            span(10, 9, "radio.transmit", 2.0),
            span(11, 10, "radio.deliver", 2.1),
            span(12, 11, "window.open", 2.1, circle=-1, expires_at=2.6),
            span(13, 11, "window.report", 2.1, circle=-1, node=2),
        ]
        prov = ProvenanceIndex(forest)
        close = prov.span(7)
        reports = prov._window_reports(close, None)
        assert [r["id"] for r in reports] == [6]


class TestWalks:
    def test_lineage_nearest_first_and_stops_at_root(self):
        prov = ProvenanceIndex(location_forest())
        chain = [r["id"] for r in prov.lineage(10)]
        assert chain == [10, 8, 5, 2, 1]

    def test_lineage_stops_cleanly_at_evicted_parent(self):
        # Drop the root event, as the ring buffer would.
        records = [r for r in location_forest() if r["id"] != 1]
        prov = ProvenanceIndex(records)
        chain = [r["id"] for r in prov.lineage(10)]
        assert chain == [10, 8, 5, 2]

    def test_descendants_filter_and_order(self):
        prov = ProvenanceIndex(location_forest())
        below = prov.descendants(16, ("trust.reward", "trust.penalize"))
        assert [r["id"] for r in below] == [18, 19]

    def test_accepts_live_collector(self):
        spans = SpanCollector()
        root = spans.point("event", event_id=3)
        spans.point("report", parent=root, node=2, message_id=9)
        prov = ProvenanceIndex(spans)
        assert [r["id"] for r in prov.lineage(2)] == [2, 1]


class TestNodeView:
    def test_every_mention_of_the_node_in_order(self):
        prov = ProvenanceIndex(location_forest())
        hits = prov.node_view(7)
        assert [r["category"] for r in hits] == [
            "report",          # its own claim
            "window.cluster",  # listed as dissenter
            "trust.penalize",  # TI lowered
            "ch.decision",     # outvoted
            "ch.diagnosis",    # finally diagnosed
        ]

    def test_gated_node_shows_the_filter(self):
        forest = location_forest()
        forest[14]["args"]["gated"] = [6]
        prov = ProvenanceIndex(forest)
        assert any(
            r["category"] == "window.filter" for r in prov.node_view(6)
        )
