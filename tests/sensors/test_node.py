"""Unit tests for the sensing-node process."""

import pytest

from repro.core.trust import TrustParameters
from repro.network.geometry import Point, Region
from repro.network.messages import ChDecisionAnnouncement, EventReportMessage
from repro.network.node import NetworkNode
from repro.network.radio import ChannelConfig, RadioChannel
from repro.sensors.faults import (
    CorrectBehavior,
    Level0Behavior,
    Level1Behavior,
    TrustEstimator,
)
from repro.sensors.generator import GroundTruthEvent
from repro.sensors.node import SensorNode
from repro.sensors.sensing import SensingConfig, SensingModel
from repro.simkernel.simulator import Simulator


class Sink(NetworkNode):
    def __init__(self, node_id=100):
        super().__init__(node_id, Point(50.0, 50.0))
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def make_node(behavior=None, position=Point(45.0, 45.0), seed=1):
    sim = Simulator(seed=seed)
    channel = RadioChannel(
        sim, ChannelConfig(loss_probability=0.0, propagation_delay=0.001)
    )
    sink = Sink()
    channel.register(sink)
    sensing = SensingModel(
        SensingConfig(sensing_radius=20.0, location_sigma=1.6)
    )
    if behavior is None:
        behavior = CorrectBehavior(sensing, miss_rate=0.0)
    node = SensorNode(
        node_id=0,
        position=position,
        behavior=behavior,
        sensing=sensing,
        ch_id=100,
        rng=sim.streams.get("node-0"),
        region=Region.square(100.0),
    )
    channel.register(node)
    return sim, node, sink


def event_at(x, y, event_id=1, t=0.0):
    return GroundTruthEvent(event_id=event_id, time=t, location=Point(x, y))


class TestSensing:
    def test_in_range_event_produces_report(self):
        sim, node, sink = make_node()
        node.sense_event(event_at(50.0, 50.0))
        sim.run()
        assert len(sink.received) == 1
        report = sink.received[0]
        assert isinstance(report, EventReportMessage)
        assert report.sender == 0
        assert report.event_id == 1

    def test_out_of_range_event_is_imperceptible(self):
        sim, node, sink = make_node()
        node.sense_event(event_at(90.0, 90.0))
        sim.run()
        assert sink.received == []
        assert node.events_sensed == 0

    def test_report_offset_resolves_near_event(self):
        sim, node, sink = make_node()
        node.sense_event(event_at(50.0, 50.0))
        sim.run()
        resolved = sink.received[0].resolve_location(node.position)
        assert resolved.distance_to(Point(50.0, 50.0)) < 10.0

    def test_dead_node_does_not_sense(self):
        sim, node, sink = make_node()
        node.kill()
        node.sense_event(event_at(50.0, 50.0))
        sim.run()
        assert sink.received == []

    def test_counters(self):
        sim, node, _sink = make_node()
        node.sense_event(event_at(50.0, 50.0))
        assert node.events_sensed == 1
        assert node.reports_sent == 1


class TestQuietWindow:
    def test_correct_node_is_silent(self):
        sim, node, sink = make_node()
        node.quiet_window()
        sim.run()
        assert sink.received == []

    def test_false_alarming_node_reports(self):
        sensing = SensingModel(
            SensingConfig(sensing_radius=20.0, location_sigma=1.6)
        )
        behavior = Level0Behavior(sensing, false_alarm_rate=1.0)
        sim, node, sink = make_node(behavior=behavior)
        node.quiet_window()
        sim.run()
        assert len(sink.received) == 1
        assert sink.received[0].event_id is None

    def test_dead_node_quiet_window_noop(self):
        sensing = SensingModel(SensingConfig(sensing_radius=20.0))
        behavior = Level0Behavior(sensing, false_alarm_rate=1.0)
        sim, node, sink = make_node(behavior=behavior)
        node.kill()
        node.quiet_window()
        sim.run()
        assert sink.received == []


class TestFeedback:
    def make_smart(self):
        sensing = SensingModel(
            SensingConfig(sensing_radius=20.0, location_sigma=1.6)
        )
        params = TrustParameters(lam=0.25, fault_rate=0.1)
        behavior = Level1Behavior(
            lying=Level0Behavior(sensing, drop_rate=1.0),
            honest=CorrectBehavior(sensing),
            estimator=TrustEstimator(params),
        )
        return make_node(behavior=behavior), behavior

    def test_penalty_feedback_lowers_estimate(self):
        (sim, node, _sink), behavior = self.make_smart()
        node.on_message(
            ChDecisionAnnouncement(
                sender=100, decision_id=1, occurred=True,
                reporters=(5,), non_reporters=(0,),
            )
        )
        assert behavior.estimator.ti < 1.0

    def test_reward_feedback_for_matching_report(self):
        (sim, node, _sink), behavior = self.make_smart()
        behavior.estimator.v_est = 2.0
        node.on_message(
            ChDecisionAnnouncement(
                sender=100, decision_id=1, occurred=True,
                reporters=(0,), non_reporters=(5,),
            )
        )
        assert behavior.estimator.v_est < 2.0

    def test_uninvolved_decision_ignored(self):
        (sim, node, _sink), behavior = self.make_smart()
        node.on_message(
            ChDecisionAnnouncement(
                sender=100, decision_id=1, occurred=True,
                reporters=(5,), non_reporters=(6,),
            )
        )
        assert behavior.estimator.ti == 1.0

    def test_feedback_disabled_blocks_updates(self):
        (sim, node, _sink), behavior = self.make_smart()
        node.feedback_enabled = False
        node.on_message(
            ChDecisionAnnouncement(
                sender=100, decision_id=1, occurred=True,
                reporters=(5,), non_reporters=(0,),
            )
        )
        assert behavior.estimator.ti == 1.0


class TestCompromise:
    def test_compromise_swaps_behavior(self):
        sim, node, sink = make_node()
        assert not node.is_faulty
        sensing = SensingModel(SensingConfig(sensing_radius=20.0))
        node.compromise(Level0Behavior(sensing, drop_rate=1.0))
        assert node.is_faulty
        node.sense_event(event_at(50.0, 50.0))
        sim.run()
        assert sink.received == []  # the new behaviour drops everything
