"""The paper's four §1 contributions, each as an executable claim.

These tests intentionally read like the contribution list; the heavy
lifting lives in the focused suites, and each test here is a compact
end-to-end witness.
"""

import numpy as np

from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.core.trust import TrustParameters
from repro.experiments.harness import CorrectSpec, FaultSpec, SimulationRun


class TestContribution1:
    """"TIBFIT tolerates nodes that fail both naturally and
    maliciously, and makes decisions on event occurrence as well as
    location.  Under several scenarios, accurate event determination
    and localization can be done even with more than 50% of the
    network compromised.  We also demonstrate diagnosis and limited
    recovery." """

    def test_beyond_half_compromised_with_diagnosis(self):
        rng = np.random.default_rng(61)
        faulty = tuple(
            int(x) for x in rng.choice(100, size=55, replace=False)
        )
        run = SimulationRun(
            mode="location",
            n_nodes=100,
            field_side=100.0,
            deployment_kind="grid",
            sensing_radius=20.0,
            r_error=5.0,
            lam=0.25,
            fault_rate=0.1,
            correct_spec=CorrectSpec(sigma=1.6),   # natural noise
            fault_spec=FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
            faulty_ids=faulty,                     # malicious majority
            diagnosis_threshold=0.2,
            channel_loss=0.008,
            seed=61,
        )
        run.run(100)
        metrics = run.metrics()
        # Occurrence AND location decided, beyond 50% compromised.
        assert metrics.accuracy >= 0.6
        assert metrics.mean_localisation_error < 5.0
        # Diagnosis names real liars far more often than honest nodes.
        assert metrics.diagnosis_recall >= 0.4
        assert metrics.diagnosis_false_positives <= 3


class TestContribution2:
    """"No nodes are considered immune to failure, whether they are
    sensing nodes or the data sink." """

    def test_the_data_sink_itself_is_a_failure_domain(self):
        # The CH is an addressable, killable node like any other; the
        # §3.4 machinery (shadow CHs + BS voting) exists precisely
        # because of that, and is exercised in
        # tests/clusterctl/test_shadow.py and examples/ch_failover.py.
        from repro.network.geometry import Point
        from repro.network.topology import Deployment, Region

        deployment = Deployment(region=Region.square(10.0))
        ch = ClusterHead(
            node_id=1,
            position=Point(5.0, 5.0),
            deployment=deployment,
            config=ClusterHeadConfig(
                mode="binary", trust=TrustParameters()
            ),
        )
        assert ch.alive
        ch.kill()
        assert not ch.alive  # same lifecycle as every sensor


class TestContribution3:
    """"We have come up with an adversary model with increasing levels
    of sophistication and demonstrate the effectiveness of the
    protocol in each case." """

    def test_damage_orders_with_sophistication_under_tibfit(self):
        def accuracy(level):
            rng = np.random.default_rng(67)
            faulty = tuple(
                int(x) for x in rng.choice(100, size=50, replace=False)
            )
            run = SimulationRun(
                mode="location",
                n_nodes=100,
                field_side=100.0,
                deployment_kind="grid",
                sensing_radius=20.0,
                r_error=5.0,
                lam=0.25,
                fault_rate=0.1,
                correct_spec=CorrectSpec(sigma=1.6),
                fault_spec=FaultSpec(
                    level=level, drop_rate=0.25, sigma=4.25
                ),
                faulty_ids=faulty,
                channel_loss=0.0,
                seed=67,
            )
            run.run(80)
            return run.metrics().accuracy

        level0, level1, level2 = (accuracy(l) for l in (0, 1, 2))
        # Level 1's self-throttling makes it WEAKER than naive level 0
        # against TIBFIT (the §4.2 finding), while colluding level 2 is
        # the strongest attack of the three.
        assert level1 >= level0
        assert level2 <= level0
        # The protocol remains effective (above coin-flip) in each case.
        assert min(level0, level1, level2) > 0.5


class TestContribution4:
    """"The protocol is generic and can be applied to any data sensing
    and aggregation application in sensor networks." """

    def test_same_engine_drives_binary_and_location_applications(self):
        # One public API, two application shapes (plus tracking in
        # examples/target_tracking.py).
        binary = SimulationRun(
            mode="binary",
            n_nodes=10,
            field_side=30.0,
            sensing_radius=100.0,
            lam=0.1,
            fault_rate=0.01,
            fault_spec=FaultSpec(level=0, drop_rate=0.5),
            faulty_ids=(0, 1, 2),
            channel_loss=0.0,
            seed=71,
        )
        binary.run(20)
        location = SimulationRun(
            mode="location",
            n_nodes=25,
            field_side=50.0,
            sensing_radius=20.0,
            r_error=5.0,
            correct_spec=CorrectSpec(sigma=1.0),
            faulty_ids=(),
            channel_loss=0.0,
            seed=71,
        )
        location.run(20)
        assert binary.metrics().accuracy == 1.0
        assert location.metrics().accuracy == 1.0
        # The location pipeline produced located decisions; the binary
        # pipeline produced occurrence-only ones.
        assert all(
            d.location is None for d in binary.ch.decisions
        )
        assert any(
            d.location is not None for d in location.ch.decisions
        )
