"""Lossy single-hop radio channel.

The original evaluation ran over ns-2's 802.11 wireless model, whose only
behaviour the paper leans on is that "correct nodes' packets are
naturally dropped less than 1% of the time" (§4.2) -- which is exactly
why Experiment 2 sets the fault-rate constant ``f_r = 0.1`` differently
from the NER.  :class:`RadioChannel` models that directly: each
transmission is delivered after a propagation delay unless an independent
Bernoulli trial drops it.  Range limits and per-link loss overrides are
supported for topology-sensitive scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, NamedTuple, Optional, Tuple

from repro.network.messages import Message
from repro.network.node import NetworkNode
from repro.simkernel.simulator import Simulator


class Intercept(NamedTuple):
    """Verdict returned by a transmit interceptor.

    ``drop=True`` discards the transmission (reason ``"chaos"``);
    otherwise one copy is delivered per entry in ``extra_delays``, each
    offset by that amount *on top of* the channel's natural delay.
    Entries must be non-negative, so a perturbed copy can never precede
    its own send.  ``Intercept(False, (0.0, 0.5))`` duplicates the
    message with the copy half a second late.
    """

    drop: bool
    extra_delays: Tuple[float, ...] = (0.0,)


#: A transmit-path hook: ``fn(sender_id, receiver_id, now) -> verdict``.
#: Returning ``None`` means "no opinion" -- the transmission proceeds
#: exactly as if no interceptor were installed.
Interceptor = Callable[[int, int, float], Optional[Intercept]]


@dataclass(frozen=True)
class ChannelConfig:
    """Channel behaviour knobs.

    Attributes
    ----------
    loss_probability:
        Independent probability that any single transmission is dropped.
        The ns-2 stand-in default is 0.008 (sub-1%, per §4.2).
    propagation_delay:
        Fixed time between transmit and deliver.
    jitter:
        Half-width of a uniform random perturbation added to the delay
        (delivery order between different senders can then interleave, as
        on a real channel).  Zero disables jitter.
    range_limit:
        Maximum sender-receiver distance; transmissions beyond it are
        silently lost.  ``None`` disables the limit (single-cluster
        experiments assume one-hop reachability, §2).
    """

    loss_probability: float = 0.008
    propagation_delay: float = 0.01
    jitter: float = 0.0
    range_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.jitter > self.propagation_delay:
            # A jitter draw near -jitter would put the delivery at a
            # negative offset -- scheduled before its own send -- which
            # the old max(0) clamp silently folded onto the send instant,
            # biasing the delay distribution instead of failing loudly.
            raise ValueError(
                f"jitter ({self.jitter}) must not exceed propagation_delay "
                f"({self.propagation_delay}); a perturbed delivery could "
                "otherwise precede its own transmission"
            )
        if self.range_limit is not None and self.range_limit <= 0:
            raise ValueError("range_limit must be positive when set")


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result descriptor for a single transmission attempt."""

    delivered: bool
    reason: str  # "ok", "dropped", "out-of-range", "dead-receiver",
    #              "unknown-destination", "chaos" (interceptor drop)


class RadioChannel:
    """Single-hop broadcast medium connecting :class:`NetworkNode` endpoints.

    Parameters
    ----------
    sim:
        The simulator used for delivery scheduling and randomness (stream
        name ``"channel"``).
    config:
        Channel behaviour; see :class:`ChannelConfig`.
    """

    def __init__(
        self, sim: Simulator, config: Optional[ChannelConfig] = None
    ) -> None:
        self._sim = sim
        self.config = config if config is not None else ChannelConfig()
        self._nodes: Dict[int, NetworkNode] = {}
        self._link_loss: Dict[Tuple[int, int], float] = {}
        self._taps: Dict[int, list] = {}
        self._interceptor: Optional[Interceptor] = None
        self._rng = sim.streams.get("channel")
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> None:
        """Add an endpoint to the channel and wire its references."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        node.attach(self._sim, self)

    def unregister(self, node_id: int) -> None:
        """Remove an endpoint (e.g. a diagnosed-faulty node being isolated)."""
        self._nodes.pop(node_id, None)

    def node(self, node_id: int) -> NetworkNode:
        """Look up a registered endpoint by id."""
        return self._nodes[node_id]

    def known_ids(self) -> Tuple[int, ...]:
        """All registered node ids, sorted."""
        return tuple(sorted(self._nodes))

    def set_link_loss(self, sender: int, receiver: int, p: float) -> None:
        """Override loss probability for one directed link.

        Used by fault-injection tests and by Experiment 2's faulty nodes,
        which "drop packets 25% of the time" (Table 2) -- modelled as
        elevated loss on their outgoing links.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self._link_loss[(sender, receiver)] = p

    def set_sender_loss(self, sender: int, p: float) -> None:
        """Override loss probability for every link leaving ``sender``."""
        for receiver in self._nodes:
            if receiver != sender:
                self.set_link_loss(sender, receiver, p)

    def clear_link_loss(self, sender: int, receiver: int) -> None:
        """Remove a per-link override, reverting to the channel default."""
        self._link_loss.pop((sender, receiver), None)

    # ------------------------------------------------------------------
    # Transmit interception (chaos fault injection)
    # ------------------------------------------------------------------
    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        """Install (or, with ``None``, remove) the transmit-path hook.

        The interceptor is consulted once per transmission that survives
        the natural checks (registration, liveness, range, Bernoulli
        loss) and may drop, delay, or duplicate the delivery -- see
        :class:`Intercept`.  Only one interceptor may be installed at a
        time; the uninstrumented hot path pays a single attribute check.
        """
        if interceptor is not None and self._interceptor is not None:
            raise ValueError("an interceptor is already installed")
        self._interceptor = interceptor

    # ------------------------------------------------------------------
    # Promiscuous taps (shadow cluster heads, §3.4)
    # ------------------------------------------------------------------
    def add_tap(self, watched_id: int, tap: NetworkNode) -> None:
        """Deliver a copy of every message ``watched_id`` receives to ``tap``.

        §3.4: shadow cluster heads "monitor all input and output traffic
        associated with the selected CH".  Input traffic is mirrored via
        taps; output traffic is visible because CH verdicts are broadcast.
        """
        self._taps.setdefault(watched_id, []).append(tap)

    def remove_tap(self, watched_id: int, tap: NetworkNode) -> None:
        """Stop mirroring ``watched_id``'s inbound traffic to ``tap``."""
        taps = self._taps.get(watched_id, [])
        if tap in taps:
            taps.remove(tap)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def unicast(
        self, sender: NetworkNode, destination: int, message: Message
    ) -> DeliveryOutcome:
        """Attempt delivery of ``message`` from ``sender`` to ``destination``.

        The returned outcome reflects the *transmission-time* verdict
        (loss/range checks happen immediately; the callback fires after
        the propagation delay).
        """
        self.sent += 1
        receiver = self._nodes.get(destination)
        verdict: Optional[Intercept] = None
        if receiver is None:
            outcome = DeliveryOutcome(False, "unknown-destination")
        elif not receiver.alive:
            outcome = DeliveryOutcome(False, "dead-receiver")
        elif not self._in_range(sender, receiver):
            outcome = DeliveryOutcome(False, "out-of-range")
        elif self._rng.random() < self._loss_for(sender.node_id, destination):
            outcome = DeliveryOutcome(False, "dropped")
        else:
            interceptor = self._interceptor
            if interceptor is not None:
                verdict = interceptor(
                    sender.node_id, destination, self._sim.now
                )
            if verdict is not None and verdict.drop:
                outcome = DeliveryOutcome(False, "chaos")
            else:
                outcome = DeliveryOutcome(True, "ok")

        metrics = self._sim.metrics
        if metrics.enabled:
            metrics.counter("radio.sent").inc()
            metrics.counter(
                "radio.delivered" if outcome.delivered else "radio.dropped"
            ).inc()
            if not outcome.delivered:
                metrics.counter(f"radio.drop.{outcome.reason}").inc()
        if outcome.delivered:
            self.delivered += 1
            delay = self._delay()
            label = f"deliver:{type(message).__name__}"
            if verdict is None:
                self._sim.after(delay, self._deliver, receiver, message,
                                label=label)
            else:
                for extra in verdict.extra_delays:
                    self._sim.after(delay + extra, self._deliver, receiver,
                                    message, label=label)
        else:
            self.dropped += 1
            self._sim.trace.emit(
                self._sim.now,
                "radio.drop",
                sender=sender.node_id,
                destination=destination,
                reason=outcome.reason,
                message=type(message).__name__,
            )
        return outcome

    def broadcast(self, sender: NetworkNode, message: Message) -> int:
        """Transmit to every other live endpoint; returns deliveries started.

        Each receiver suffers an independent loss trial, matching a
        contention-free broadcast over independent fading links.
        """
        started = 0
        for node_id in sorted(self._nodes):
            if node_id == sender.node_id:
                continue
            if self.unicast(sender, node_id, message).delivered:
                started += 1
        return started

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver(self, receiver: NetworkNode, message: Message) -> None:
        if not receiver.alive:
            # Receiver died between transmit and delivery.
            self._sim.trace.emit(
                self._sim.now,
                "radio.drop",
                sender=message.sender,
                destination=receiver.node_id,
                reason="died-in-flight",
                message=type(message).__name__,
            )
            return
        self._sim.trace.emit(
            self._sim.now,
            "radio.deliver",
            sender=message.sender,
            destination=receiver.node_id,
            message=type(message).__name__,
        )
        receiver.on_message(message)
        for tap in self._taps.get(receiver.node_id, ()):
            if tap.alive and tap.node_id != message.sender:
                tap.on_message(message)

    def _loss_for(self, sender: int, receiver: int) -> float:
        return self._link_loss.get(
            (sender, receiver), self.config.loss_probability
        )

    def _in_range(self, sender: NetworkNode, receiver: NetworkNode) -> bool:
        if self.config.range_limit is None:
            return True
        return (
            sender.position.distance_to(receiver.position)
            <= self.config.range_limit
        )

    def _delay(self) -> float:
        delay = self.config.propagation_delay
        if self.config.jitter > 0:
            delay += self._rng.uniform(-self.config.jitter, self.config.jitter)
        return max(delay, 0.0)

    def __repr__(self) -> str:
        return (
            f"RadioChannel(nodes={len(self._nodes)}, sent={self.sent}, "
            f"delivered={self.delivered}, dropped={self.dropped})"
        )
