"""Causal span records: the provenance side of the observability layer.

A *span* is one point on the causal chain behind a TIBFIT verdict --
a sensed event, a report, a radio transmit / deliver / drop, a
collection-window open / close, the dedupe-and-gate filter, a cluster,
a CTI vote, a trust transition, a CH decision, a diagnosis.  Every span
carries a run-unique id and the id of its causal *parent*, so the whole
run forms a forest that :mod:`repro.obs.provenance` can walk from any
:class:`~repro.network.messages.ChDecisionAnnouncement` back to the
sensed event that caused it.

Causal-context token
--------------------
Producers and consumers of a causal edge are usually separated by the
event queue (a report is scheduled now, delivered later).  The token
that bridges the gap is :attr:`SpanCollector.current` -- the span id of
"whatever is causally happening right now".  The radio stamps it on the
delivery event it schedules (both scheduler backends store it in the
event's ``ctx`` slot and restore it when the callback fires), so by the
time a cluster head handles a message, ``spans.current`` is the
``radio.deliver`` span of that very message.  Cross-message edges that
the queue cannot carry (a message produced in one place, transmitted in
another) go through :meth:`bind` / :meth:`bound`, keyed on the message
id.

Zero-overhead disabled path
---------------------------
Mirroring :func:`repro.simkernel.trace.noop_trace` and
:data:`repro.obs.registry.NULL_REGISTRY`, every emit site is written
as::

    spans = sim.spans
    if spans.enabled:
        spans.point("radio.drop", parent=spans.current, reason=reason)

so a disabled run (:data:`NULL_SPANS`, the default everywhere) costs
one attribute check per site and never allocates.  Span emission only
*reads* simulation state -- never the RNG streams -- so an instrumented
run is bit-identical to an uninstrumented one
(:func:`repro.chaos.invariants.run_fingerprint` equality, asserted by
``tests/experiments/test_observability.py`` under both scheduler and
both decision backends).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["NULL_SPANS", "Span", "SpanCollector"]

#: Default ring-buffer capacity.  Spans are ~an order of magnitude more
#: numerous than trace records (every message contributes several), so
#: the cap is higher than TraceLog's; :attr:`SpanCollector.evicted`
#: reports overflow and the exporter surfaces it in the manifest.
_MAX_SPANS = 200_000


class Span:
    """One causal point: id, parent link, category, time, payload."""

    __slots__ = ("span_id", "parent_id", "category", "time", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        category: str,
        time: float,
        args: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.time = time
        self.args = args

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"category={self.category!r}, t={self.time})"
        )


class SpanCollector:
    """Collects spans into a bounded ring buffer.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity; the oldest spans are evicted first.
        :attr:`emitted` keeps counting past the cap, so ``evicted``
        (``emitted - len(collector)``) reports what was lost.
    """

    def __init__(self, max_spans: int = _MAX_SPANS) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.enabled = True
        #: The causal-context token: span id of whatever is causally in
        #: flight right now (0 = no context).  Written only inside
        #: ``if spans.enabled:`` branches.
        self.current = 0
        self.emitted = 0
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._bindings: Dict[Any, int] = {}
        self._clock: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Timestamp source for :meth:`point` (the simulator's clock)."""
        self._clock = clock

    def point(self, category: str, parent: int = 0, **args: Any) -> int:
        """Record one span; returns its id (parents for later spans)."""
        self.emitted += 1
        span_id = self.emitted
        clock = self._clock
        self._spans.append(
            Span(
                span_id,
                parent,
                category,
                clock() if clock is not None else 0.0,
                args,
            )
        )
        return span_id

    def bind(self, key: Any, span_id: int) -> None:
        """Associate a lookup key (a message id) with a span.

        Bindings are *kept* after :meth:`bound` reads them: a chaos
        duplicate delivers the same message twice and both deliveries
        must resolve to the same origin.
        """
        self._bindings[key] = span_id

    def bound(self, key: Any) -> int:
        """The span bound to ``key``, or 0 (no context)."""
        return self._bindings.get(key, 0)

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------
    @property
    def evicted(self) -> int:
        """Spans lost to the ring buffer (0 = full provenance)."""
        return self.emitted - len(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def spans(self, category_prefix: Optional[str] = None) -> List[Span]:
        """Buffered spans, optionally filtered by dotted category prefix."""
        if category_prefix is None:
            return list(self._spans)
        dotted = category_prefix + "."
        return [
            span
            for span in self._spans
            if span.category == category_prefix
            or span.category.startswith(dotted)
        ]

    def to_records(self) -> Iterator[Dict[str, Any]]:
        """JSONL records (the ``spans.jsonl`` schema; see
        :func:`repro.obs.export.validate_span_record`)."""
        for span in self._spans:
            yield {
                "id": span.span_id,
                "parent": span.parent_id,
                "category": span.category,
                "time": span.time,
                "args": _jsonable_args(span.args),
            }

    def __repr__(self) -> str:
        return (
            f"SpanCollector(emitted={self.emitted}, "
            f"buffered={len(self._spans)}, evicted={self.evicted})"
        )


def _jsonable_args(args: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _jsonable(value) for key, value in args.items()}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


class _NullSpans:
    """The shared disabled collector: every operation is a no-op.

    Deliberately *not* slotted -- a stray unguarded attribute write
    must stay harmless rather than crash a sweep.  All real emit sites
    check ``spans.enabled`` first, so nothing here runs hot.
    """

    enabled = False
    current = 0
    emitted = 0
    evicted = 0

    def attach_clock(self, clock: Callable[[], float]) -> None:
        pass

    def point(self, category: str, parent: int = 0, **args: Any) -> int:
        return 0

    def bind(self, key: Any, span_id: int) -> None:
        pass

    def bound(self, key: Any) -> int:
        return 0

    def spans(self, category_prefix: Optional[str] = None) -> List[Span]:
        return []

    def to_records(self) -> Iterator[Dict[str, Any]]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def __repr__(self) -> str:
        return "SpanCollector(disabled)"


#: The shared disabled collector handed to everything that does not opt
#: into provenance -- the spans analogue of ``NULL_REGISTRY``.
NULL_SPANS = _NullSpans()
