"""Extension bench: the rotating network swept over percent faulty.

Not a paper figure -- the paper fixes the data sink -- but the curve
its §2 system model implies.  Three configurations: the full protocol
(rotation + trust hand-off), rotation with per-leadership amnesia, and
a rotating majority-voting baseline.

Expected: the hand-off configuration dominates at high compromise;
amnesia lands between it and the baseline (each leadership still
accumulates a little state before discarding it).
"""

from repro.experiments.experiment4 import Experiment4Config, rotating_sweep
from benchmarks._shared import print_figure, run_once

CONFIG = Experiment4Config(trials=2, seed=2005)


def test_rotating_network_sweep(benchmark):
    data = run_once(benchmark, lambda: rotating_sweep(CONFIG))
    print_figure(
        "Extension: rotating multi-cluster network, accuracy vs %faulty "
        "(level 0)",
        data,
        x_label="% faulty",
    )

    tibfit = {p.x: p.mean for p in data["Rotating TIBFIT"].points}
    amnesia = {p.x: p.mean for p in data["Rotating Amnesia"].points}
    base = {p.x: p.mean for p in data["Rotating Baseline"].points}

    # Low compromise: everyone fine.
    assert min(tibfit[10.0], amnesia[10.0], base[10.0]) > 0.9
    # High compromise: the full protocol dominates.
    top = 58.0
    assert tibfit[top] >= amnesia[top] - 0.03
    assert tibfit[top] >= base[top]
    # And averaged over the contested region TIBFIT leads the baseline.
    contested = [45.0, 58.0]
    gap = sum(tibfit[x] - base[x] for x in contested) / len(contested)
    assert gap >= 0.03
