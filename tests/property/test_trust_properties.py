"""Property-based tests for the trust-index model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trust import TrustParameters, TrustTable

params_strategy = st.builds(
    TrustParameters,
    lam=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    fault_rate=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
)

outcome_sequences = st.lists(st.booleans(), min_size=0, max_size=200)


@given(params=params_strategy, v=st.floats(min_value=0.0, max_value=100.0))
def test_ti_always_in_unit_interval(params, v):
    ti = params.ti_of(v)
    assert 0.0 < ti <= 1.0


@given(
    params=params_strategy,
    v1=st.floats(min_value=0.0, max_value=50.0),
    v2=st.floats(min_value=0.0, max_value=50.0),
)
def test_ti_monotone_decreasing_in_v(params, v1, v2):
    """Monotone always; strict once the gap is float-representable."""
    lo, hi = sorted((v1, v2))
    assert params.ti_of(lo) >= params.ti_of(hi)
    if params.lam * (hi - lo) > 1e-9:
        assert params.ti_of(lo) > params.ti_of(hi)


@given(params=params_strategy, outcomes=outcome_sequences)
@settings(max_examples=60)
def test_v_never_negative_and_ti_never_above_one(params, outcomes):
    table = TrustTable(params, node_ids=[0])
    for rewarded in outcomes:
        if rewarded:
            table.reward(0)
        else:
            table.penalize(0)
        assert table.entry(0).v >= 0.0
        assert table.ti(0) <= 1.0


@given(params=params_strategy, outcomes=outcome_sequences)
@settings(max_examples=60)
def test_order_free_accounting_of_v(params, outcomes):
    """Up to the floor at zero, v depends only on the counts of rewards
    and penalties when all penalties come first."""
    table = TrustTable(params, node_ids=[0])
    penalties = sum(1 for o in outcomes if not o)
    rewards = len(outcomes) - penalties
    for _ in range(penalties):
        table.penalize(0)
    for _ in range(rewards):
        table.reward(0)
    expected = max(
        0.0,
        penalties * params.penalty_step - rewards * params.reward_step,
    )
    # Floor effects only reduce v relative to the unfloored sum.
    assert table.entry(0).v <= penalties * params.penalty_step + 1e-9
    assert table.entry(0).v >= expected - 1e-9


@given(
    params=params_strategy,
    group_a=st.lists(st.integers(min_value=0, max_value=30), max_size=10),
    group_b=st.lists(st.integers(min_value=31, max_value=60), max_size=10),
)
def test_cti_is_additive_over_disjoint_groups(params, group_a, group_b):
    table = TrustTable(params)
    a = set(group_a)
    b = set(group_b)
    assert table.cti(a | b) == table.cti(a) + table.cti(b)


@given(params=params_strategy, outcomes=outcome_sequences)
@settings(max_examples=40)
def test_export_import_is_lossless(params, outcomes):
    table = TrustTable(params, node_ids=[0, 1])
    for i, rewarded in enumerate(outcomes):
        node = i % 2
        if rewarded:
            table.reward(node)
        else:
            table.penalize(node)
    restored = TrustTable(params)
    restored.import_state(table.export_state())
    for node in (0, 1):
        assert math.isclose(restored.ti(node), table.ti(node))


@given(params=params_strategy)
def test_penalty_then_rewards_recover_exactly(params):
    """k rewards with k = ceil(penalty/reward) restore full trust.

    Guarded to a sane recovery horizon: a (sub)normal-tiny f_r makes
    the exact count astronomically large (ceil(1/5e-324) iterations),
    which is the by-design "never recovers in practice" regime, not a
    loop worth executing.
    """
    table = TrustTable(params, node_ids=[0])
    table.penalize(0)
    if params.reward_step < 1e-4:
        return  # f_r ~ 0: recovery horizon impractically long, by design
    needed = math.ceil(params.penalty_step / params.reward_step)
    assert needed <= 10_000
    for _ in range(needed):
        table.reward(0)
    assert table.ti(0) == 1.0


@given(
    params=params_strategy,
    penalties=st.integers(min_value=1, max_value=20),
)
def test_below_threshold_consistent_with_ti(params, penalties):
    table = TrustTable(params, node_ids=[0, 1])
    for _ in range(penalties):
        table.penalize(0)
    threshold = 0.5
    flagged = table.below_threshold(threshold)
    assert (0 in flagged) == (table.ti(0) < threshold)
    assert 1 not in flagged
