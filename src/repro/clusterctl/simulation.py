"""Full multi-cluster TIBFIT deployment with rotating cluster heads.

The headline experiments run a single static CH (as Experiment 1 does
explicitly).  The paper's *system model*, however, is richer (§2):
clusters form around LEACH-elected heads, the heads rotate on
energy/TI grounds, an outgoing CH ships its trust table to the base
station, the incoming CH requests it back, under-trusted candidates
are vetoed, and two shadow cluster heads per cluster watch the active
head.  :class:`RotatingClusterSimulation` wires all of that together
on the DES substrate:

* each *leadership round* runs a LEACH election (gated on the BS trust
  registry), appoints every elected node as that round's CH, and
  appoints the two highest-trust members of each cluster as SCHs with
  radio taps on their CH;
* sensing nodes report to their current CH; each CH runs the location
  pipeline over its own members;
* at the end of the round every CH transfers ``{node: v}`` to the BS,
  which merges it into the cluster-agnostic registry the next round's
  CHs (and candidacy vetoes) read.

Trust is keyed by node id at the base station, so state accumulated
under one head survives rotation -- the property that lets a rotating
network still build the long-term state TIBFIT depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clusterctl.base_station import BaseStation
from repro.clusterctl.head import ClusterHead, ClusterHeadConfig, DecisionRecord
from repro.clusterctl.leach import EnergyModel, LeachConfig, LeachElection
from repro.clusterctl.shadow import ShadowClusterHead
from repro.core.trust import TrustParameters
from repro.network.geometry import Point, Region
from repro.network.radio import ChannelConfig, RadioChannel
from repro.network.topology import Deployment, shared_grid_deployment
from repro.sensors.faults import CollusionCoordinator, NodeBehavior
from repro.sensors.generator import EventGenerator, GroundTruthEvent
from repro.sensors.node import SensorNode
from repro.sensors.sensing import SensingConfig, SensingModel
from repro.sensors.specs import (
    CollusionCellPool,
    CorrectSpec,
    FaultSpec,
    make_correct_behavior,
    make_faulty_behavior,
)
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import noop_trace
from repro.experiments.metrics import RunMetrics, score_run


@dataclass
class LeadershipRound:
    """Book-keeping for one leadership round."""

    round_number: int
    cluster_heads: Tuple[int, ...]
    membership: Dict[int, List[int]]
    shadows: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    vetoed: Tuple[int, ...] = ()
    corrupt_heads: Tuple[int, ...] = ()


class _CorruptClusterHead(ClusterHead):
    """A compromised node serving as CH: §3.4's failing data sink.

    The corruption model is verdict inversion -- the worst arbitrary
    fault for a decision maker, and the one the shadow CHs are built to
    catch (they recompute from the same inputs and dissent).
    """

    def _record_decision(
        self, occurred, location, supporters, dissenters, span_id=0
    ):
        super()._record_decision(
            not occurred, location, supporters, dissenters, span_id=span_id
        )


class RotatingClusterSimulation:
    """A TIBFIT network with LEACH-rotated cluster heads.

    Parameters
    ----------
    n_nodes / field_side:
        Deployment (grid, as in Experiment 2).
    sensing_radius / r_error:
        Sensing and localisation bounds.
    lam / fault_rate:
        Trust model parameters (shared by CHs and the BS registry).
    correct_spec / fault_spec / faulty_ids:
        Population behaviour, as in the single-CH harness.
    leach:
        Election parameters; ``ti_threshold`` doubles as the §2 veto.
    events_per_leadership:
        Event rounds served by one set of CHs before rotation.
    n_shadows:
        Shadow CHs per cluster (the paper uses two).
    use_trust:
        False runs the baseline voters in every CH (trust tables still
        exist for election/registry mechanics but never influence
        votes).
    corrupt_elected_faulty:
        §3.4's failing data sink: when True, a *compromised* node that
        wins an election serves as a verdict-inverting CH for its
        round.  The shadow CHs catch the wrong conclusions and the base
        station's 2-of-3 vote penalises the head's registry trust,
        which the TI admission gate then holds against it in later
        elections.  Default False (compromise affects sensing only, as
        in the headline experiments).
    transfer_trust:
        False disables the §2 base-station hand-off: each new CH starts
        from a blank trust table ("amnesia" ablation).  The registry
        still records outgoing tables so diagnosis metrics remain
        available.
    """

    BS_ID = 99_999

    def __init__(
        self,
        n_nodes: int = 100,
        field_side: float = 100.0,
        sensing_radius: float = 20.0,
        r_error: float = 5.0,
        lam: float = 0.25,
        fault_rate: float = 0.1,
        use_trust: bool = True,
        correct_spec: CorrectSpec = CorrectSpec(sigma=1.6),
        fault_spec: FaultSpec = FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
        faulty_ids: Sequence[int] = (),
        leach: LeachConfig = LeachConfig(ch_fraction=0.05, ti_threshold=0.5),
        events_per_leadership: int = 10,
        n_shadows: int = 2,
        channel_loss: float = 0.008,
        t_out: float = 1.0,
        round_interval: float = 10.0,
        transfer_trust: bool = True,
        corrupt_elected_faulty: bool = False,
        seed: int = 0,
        tracing: bool = True,
    ) -> None:
        if events_per_leadership <= 0:
            raise ValueError("events_per_leadership must be positive")
        if n_shadows < 0:
            raise ValueError("n_shadows must be non-negative")
        unknown = set(faulty_ids) - set(range(n_nodes))
        if unknown:
            raise ValueError(f"faulty_ids outside deployment: {sorted(unknown)}")

        self.n_nodes = n_nodes
        self.region = Region.square(field_side)
        self.sensing_radius = sensing_radius
        self.r_error = r_error
        self.trust_params = TrustParameters(lam=lam, fault_rate=fault_rate)
        self.use_trust = use_trust
        self.correct_spec = correct_spec
        self.fault_spec = fault_spec
        self.faulty_ids = tuple(sorted(set(faulty_ids)))
        self.leach_config = leach
        self.events_per_leadership = events_per_leadership
        self.n_shadows = n_shadows
        self.channel_loss = channel_loss
        self.t_out = t_out
        self.round_interval = round_interval
        self.transfer_trust = transfer_trust
        self.corrupt_elected_faulty = corrupt_elected_faulty
        self.seed = seed

        self.sim = Simulator(
            seed=seed, trace=None if tracing else noop_trace()
        )
        self.channel = RadioChannel(
            self.sim, ChannelConfig(loss_probability=channel_loss)
        )
        self.deployment = shared_grid_deployment(
            n_nodes, self.region, index_cell=sensing_radius
        )
        self.energy = EnergyModel(self.deployment.node_ids())
        self.bs = BaseStation(
            node_id=self.BS_ID,
            position=Point(-10.0, -10.0),
            trust_params=self.trust_params,
            ch_ti_threshold=leach.ti_threshold,
        )
        self.channel.register(self.bs)
        self.election = LeachElection(
            deployment=self.deployment,
            config=leach,
            energy=self.energy,
            rng=self.sim.streams.get("leach"),
            ti_lookup=lambda n: self.bs.ti_of(0, n),
        )
        self.generator = EventGenerator(
            self.region, self.sim.streams.get("events")
        )

        self.sensing = SensingModel(
            SensingConfig(
                sensing_radius=sensing_radius,
                location_sigma=correct_spec.sigma,
            )
        )
        self.nodes: Dict[int, SensorNode] = {}
        self._build_sensors()

        self.rounds: List[LeadershipRound] = []
        self.events: List[GroundTruthEvent] = []
        self.decisions: List[DecisionRecord] = []
        self._active_chs: Dict[int, ClusterHead] = {}
        self._active_shadows: List[ShadowClusterHead] = []
        self.rotations = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_sensors(self) -> None:
        pool: Optional[CollusionCellPool] = None
        if self.fault_spec.level == 2 and self.faulty_ids:
            pool = CollusionCellPool(
                self.fault_spec, self.sensing,
                self.sim.streams.get("collusion"),
            )

        faulty = set(self.faulty_ids)
        for node_id in self.deployment.node_ids():
            if node_id in faulty:
                behavior = make_faulty_behavior(
                    self.fault_spec,
                    self.sensing,
                    node_id,
                    self.trust_params,
                    correct_spec=self.correct_spec,
                    coordinator=pool.assign() if pool else None,
                )
            else:
                behavior = make_correct_behavior(
                    self.correct_spec, self.sensing
                )
            node = SensorNode(
                node_id=node_id,
                position=self.deployment.position_of(node_id),
                behavior=behavior,
                sensing=self.sensing,
                ch_id=-1,  # assigned per leadership round
                rng=self.sim.streams.get(f"node-{node_id}"),
                region=self.region,
            )
            node.feedback_enabled = self.use_trust
            self.nodes[node_id] = node
            self.channel.register(node)

    # ------------------------------------------------------------------
    # Leadership rounds
    # ------------------------------------------------------------------
    def _ch_endpoint_id(self, node_id: int) -> int:
        """Channel address of the CH process hosted on ``node_id``.

        The CH role runs alongside the node's sensing role; giving the
        role its own address keeps both registered simultaneously.
        """
        return 10_000 + node_id

    def _start_round(self) -> LeadershipRound:
        result = self.election.run_round()
        record = LeadershipRound(
            round_number=result.round_number,
            cluster_heads=result.cluster_heads,
            membership={
                ch: list(members)
                for ch, members in result.membership.items()
            },
            vetoed=result.vetoed,
        )

        ch_config = ClusterHeadConfig(
            mode="location",
            t_out=self.t_out,
            sensing_radius=self.sensing_radius,
            r_error=self.r_error,
            trust=self.trust_params,
            use_trust=self.use_trust,
        )
        faulty_set = set(self.faulty_ids)
        corrupt_heads = []
        for ch_node in result.cluster_heads:
            members = result.membership[ch_node]
            cluster_deployment = Deployment(region=self.region)
            for member in members:
                cluster_deployment.add(
                    member, self.deployment.position_of(member)
                )
            endpoint_id = self._ch_endpoint_id(ch_node)
            is_corrupt = (
                self.corrupt_elected_faulty and ch_node in faulty_set
            )
            head_class = _CorruptClusterHead if is_corrupt else ClusterHead
            if is_corrupt:
                corrupt_heads.append(ch_node)
            ch = head_class(
                node_id=endpoint_id,
                position=self.deployment.position_of(ch_node),
                deployment=cluster_deployment,
                config=ch_config,
                base_station_id=self.BS_ID,
                cluster_id=0,
            )
            self.channel.register(ch)
            self.bs.bind_ch(endpoint_id, 0, host_node_id=ch_node)
            if self.transfer_trust:
                # New CH requests the registry state (§2).
                ch.trust.import_state(
                    {
                        node: v
                        for node, v in self.bs.table_for_new_ch(0).items()
                        if node in set(members)
                    }
                )
            self._active_chs[ch_node] = ch

            # Members report to this CH for the round.
            for member in members:
                self.nodes[member].ch_id = endpoint_id
            # The CH's own node stays silent while it leads.
            self.nodes[ch_node].ch_id = endpoint_id

            shadows = self._appoint_shadows(ch_node, members, ch_config)
            record.shadows[ch_node] = tuple(s.node_id for s in shadows)

        record.corrupt_heads = tuple(corrupt_heads)
        self.rounds.append(record)
        return record

    def _appoint_shadows(
        self,
        ch_node: int,
        members: List[int],
        ch_config: ClusterHeadConfig,
    ) -> List[ShadowClusterHead]:
        """The ``n_shadows`` highest-registry-TI members become SCHs.

        Each SCH's mirror starts from the same base-station trust
        snapshot the incoming CH requested -- without that, an honest
        CH and its shadows would vote with different weights and the
        shadows would dissent spuriously.
        """
        ranked = sorted(
            members,
            key=lambda n: (-self.bs.ti_of(0, n), n),
        )
        member_set = set(members)
        trust_snapshot = {
            node: v
            for node, v in self.bs.table_for_new_ch(0).items()
            if node in member_set
        }
        shadows = []
        for host in ranked[: self.n_shadows]:
            cluster_deployment = self._active_chs[ch_node].deployment
            sch = ShadowClusterHead(
                node_id=20_000 + host,
                position=self.deployment.position_of(host),
                watched_ch_id=self._ch_endpoint_id(ch_node),
                deployment=cluster_deployment,
                config=ch_config,
                base_station_id=self.BS_ID,
            )
            if self.transfer_trust:
                sch._mirror.trust.import_state(trust_snapshot)
            self.channel.register(sch)
            self.channel.add_tap(self._ch_endpoint_id(ch_node), sch)
            shadows.append(sch)
        self._active_shadows.extend(shadows)
        return shadows

    def _end_round(self) -> None:
        for ch_node, ch in self._active_chs.items():
            ch.flush()
        self.sim.run()
        for ch_node, ch in self._active_chs.items():
            self.decisions.extend(ch.decisions)
            ch.end_leadership(round_number=self.election.round_number)
            endpoint = self._ch_endpoint_id(ch_node)
            self.channel.unregister(endpoint)
        self.sim.run()  # deliver the TI transfers
        for sch in self._active_shadows:
            sch.flush()
            self.channel.remove_tap(sch.watched_ch_id, sch)
            self.channel.unregister(sch.node_id)
        self._active_chs.clear()
        self._active_shadows.clear()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, leadership_rounds: int) -> "RotatingClusterSimulation":
        """Run the network through ``leadership_rounds`` rotations."""
        if leadership_rounds <= 0:
            raise ValueError("leadership_rounds must be positive")
        for _ in range(leadership_rounds):
            self._start_round()
            self.rotations += 1
            for _ in range(self.events_per_leadership):
                event_time = self.sim.now + self.round_interval
                self.sim.at(
                    event_time, self._fire_event, priority=-1,
                    label="mc-event",
                )
                self.sim.run(until=event_time + self.round_interval - 0.001)
            self._end_round()
        return self

    def _fire_event(self) -> None:
        event = self.generator.next_event(time=self.sim.now)
        self.events.append(event)
        nodes = self.nodes
        active = self._active_chs
        # Event neighbours only: sense_event's detects gate uses the
        # same radius and the same correctly-rounded distance expression
        # as the spatial index, and ids come back sorted ascending (the
        # node-dict insertion order), so send order over the channel
        # stream is identical to the full sweep.
        for node_id in self.deployment.event_neighbors(
            event.location, self.sensing_radius
        ):
            if node_id in active:
                continue  # the leading node's radio serves its CH role
            node = nodes.get(node_id)
            if node is not None:
                node.sense_event(event)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metrics(self) -> RunMetrics:
        """Score the *system-level* verdicts against ground truth.

        §3.4: when shadow CHs overruled a cluster head, the base
        station's 2-of-3 vote is the network's answer, so resolved
        decisions are scored with the corrected verdict and the
        dissenters' location.
        """
        corrections = {
            r.decision_id: r for r in self.bs.resolutions
        }
        effective = []
        for d in sorted(
            self.decisions, key=lambda d: (d.time, d.decision_id)
        ):
            fix = corrections.get(d.decision_id)
            if fix is None:
                effective.append(d)
            else:
                effective.append(
                    DecisionRecord(
                        decision_id=d.decision_id,
                        time=d.time,
                        occurred=fix.final_verdict,
                        location=(
                            fix.final_location
                            if fix.final_location is not None
                            else d.location
                        ),
                        supporters=d.supporters,
                        dissenters=d.dissenters,
                    )
                )
        outcomes, false_positives = score_run(
            self.events,
            effective,
            round_interval=self.round_interval,
            r_error=self.r_error,
        )
        return RunMetrics(
            outcomes=outcomes,
            false_positive_decisions=false_positives,
            quiet_windows=0,
            decisions_total=len(self.decisions),
            diagnosed_nodes=self.bs.registry_for(0).below_threshold(0.3),
            truly_faulty_nodes=self.faulty_ids,
        )

    def registry_snapshot(self) -> Dict[int, float]:
        """The base station's view of every node's trust."""
        registry = self.bs.registry_for(0)
        return {node_id: registry.ti(node_id) for node_id in registry}

    def leadership_counts(self) -> Dict[int, int]:
        """How many rounds each node led (rotation evidence)."""
        counts: Dict[int, int] = {}
        for record in self.rounds:
            for ch in record.cluster_heads:
                counts[ch] = counts.get(ch, 0) + 1
        return counts
