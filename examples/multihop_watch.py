#!/usr/bin/env python
"""Multi-hop TIBFIT: sensors several hops from the data sink (§3.4).

The paper notes TIBFIT extends beyond one-hop clusters if a "reliable
data dissemination primitive" carries reports to the sink unaltered.
This example builds exactly that stack: a 7x7 field whose radio range
only reaches adjacent grid neighbours, a data sink in the corner, and
greedy-geographic routing with hop-by-hop acknowledgements carrying
every report.  A third of the sensors are compromised; one relay on a
popular route is Byzantine and silently blackholes traffic.

Shown:
  * reports crossing up to ~9 hops with per-link loss, still delivered
    (at-least-once + duplicate suppression),
  * the blackhole relay's damage bounded by route diversity and
    retransmission,
  * TIBFIT's decision quality unchanged by the transport: the CH's
    trust table still separates liars from honest nodes.

Run:
    python examples/multihop_watch.py
"""

import numpy as np

from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.core.trust import TrustParameters
from repro.network.geometry import Point, Region
from repro.network.messages import EventReportMessage
from repro.network.multihop import ReliableRelay, RoutingTable
from repro.network.radio import ChannelConfig, RadioChannel
from repro.network.topology import grid_deployment
from repro.sensors.generator import EventGenerator
from repro.sensors.sensing import SensingConfig, SensingModel
from repro.sensors.specs import CorrectSpec, FaultSpec, make_correct_behavior, make_faulty_behavior
from repro.experiments.metrics import score_run
from repro.experiments.reporting import render_table
from repro.simkernel.simulator import Simulator

N_NODES = 49
FIELD = 70.0
RADIO_RANGE = 15.0       # only adjacent grid cells (10 apart) connect
SINK_ID = 500
EVENTS = 60
SEED = 13
COMPROMISED = 16
BLACKHOLE = 8            # a relay one hop from the sink's corner


def main() -> None:
    sim = Simulator(seed=SEED)
    channel = RadioChannel(
        sim,
        ChannelConfig(
            loss_probability=0.02,
            propagation_delay=0.002,
            range_limit=RADIO_RANGE,
        ),
    )
    region = Region.square(FIELD)
    deployment = grid_deployment(N_NODES, region)
    sink_position = Point(5.0, 5.0)  # co-located with corner node 0

    routing = RoutingTable(deployment, radio_range=RADIO_RANGE)
    routing.add_endpoint(SINK_ID, sink_position)

    trust_params = TrustParameters(lam=0.25, fault_rate=0.1)
    ch = ClusterHead(
        node_id=SINK_ID + 1,  # decision logic lives behind the sink relay
        position=sink_position,
        deployment=deployment,
        config=ClusterHeadConfig(
            mode="location",
            t_out=1.5,
            sensing_radius=20.0,
            r_error=5.0,
            trust=trust_params,
            announce=False,
        ),
    )
    channel.register(ch)

    sink_relay = ReliableRelay(
        node_id=SINK_ID,
        position=sink_position,
        routing=routing,
        ack_timeout=0.05,
        max_retries=5,
        deliver_local=ch.on_message,
    )
    channel.register(sink_relay)

    relays = {}
    for node_id in deployment.node_ids():
        relay = ReliableRelay(
            node_id=node_id,
            position=deployment.position_of(node_id),
            routing=routing,
            ack_timeout=0.05,
            max_retries=5,
            drop_everything=(node_id == BLACKHOLE),
        )
        channel.register(relay)
        relays[node_id] = relay

    sensing = SensingModel(
        SensingConfig(sensing_radius=20.0, location_sigma=1.6)
    )
    rng = np.random.default_rng(SEED)
    captured = set(
        int(x) for x in rng.choice(N_NODES, size=COMPROMISED, replace=False)
    )
    captured.discard(BLACKHOLE)
    behaviors = {}
    for node_id in deployment.node_ids():
        if node_id in captured:
            behaviors[node_id] = make_faulty_behavior(
                FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
                sensing, node_id, trust_params,
            )
        else:
            behaviors[node_id] = make_correct_behavior(
                CorrectSpec(sigma=1.6), sensing
            )

    generator = EventGenerator(region, sim.streams.get("events"))
    events = []
    node_rngs = {
        node_id: sim.streams.get(f"node-{node_id}")
        for node_id in deployment.node_ids()
    }

    def fire_event() -> None:
        event = generator.next_event(time=sim.now)
        events.append(event)
        for node_id in deployment.node_ids():
            position = deployment.position_of(node_id)
            if not sensing.detects(position, event.location):
                continue
            claim = behaviors[node_id].on_event(
                position, event.location, node_rngs[node_id]
            )
            if claim is None:
                continue
            report = EventReportMessage(
                sender=node_id,
                event_id=event.event_id,
                offset=sensing.encode_report(position, claim),
            )
            relays[node_id].originate(report, destination=SINK_ID)

    for k in range(EVENTS):
        sim.at((k + 1) * 10.0, fire_event, priority=-1)
    sim.run()
    ch.flush()
    sim.run()

    outcomes, _fps = score_run(
        events, ch.decisions, round_interval=10.0, r_error=5.0
    )
    detected = sum(o.detected for o in outcomes)
    hops = [
        r.fields["hops"]
        for r in sim.trace.records("relay.delivered")
        if r.fields["hops"] > 0
    ]
    blackholed = sim.trace.count("relay.byzantine-drop")
    gave_up = sum(r.dropped_after_retries for r in relays.values())

    print(f"Multi-hop TIBFIT: {N_NODES} sensors, radio range "
          f"{RADIO_RANGE:g} on a {FIELD:g}x{FIELD:g} field, sink in the "
          f"corner\n")
    print(render_table(
        ["metric", "value"],
        [
            ("events", str(len(events))),
            ("events located within r_error",
             f"{detected} ({detected / len(events):.1%})"),
            ("max hops travelled", str(max(hops))),
            ("mean hops", f"{sum(hops) / len(hops):.1f}"),
            ("reports blackholed by Byzantine relay", str(blackholed)),
            ("hops abandoned after retries", str(gave_up)),
        ],
    ))

    trust = ch.trust.tis()
    honest = [ti for n, ti in trust.items() if n not in captured]
    lying = [ti for n, ti in trust.items() if n in captured]
    print("\nTrust table at the sink (transport did not blur the signal):")
    print(render_table(
        ["population", "mean TI"],
        [
            ("honest", f"{np.mean(honest):.3f}"),
            ("compromised", f"{np.mean(lying):.3f}"),
        ],
    ))


if __name__ == "__main__":
    main()
