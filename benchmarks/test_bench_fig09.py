"""Figure 9: accuracy over time under linear decay (sigma_faulty 6.0).

Same expectations as Figure 8 at the larger faulty-node noise level:
TIBFIT beats the baseline at matched sigmas over the late windows, and
sustains materially higher accuracy deep into the decay.
"""

from repro.experiments.config import Experiment3Config
from repro.experiments.experiment3 import figure9_data
from benchmarks._shared import print_figure, run_once

CONFIG = Experiment3Config(trials=2, seed=2005)
SIGMA_PAIRS = ((1.6, 6.0), (2.0, 6.0))


def test_figure9_decay(benchmark):
    data = run_once(
        benchmark, lambda: figure9_data(CONFIG, sigma_pairs=SIGMA_PAIRS)
    )
    print_figure(
        "Figure 9: Experiment 3 accuracy over time (sigma_faulty 6.0)",
        data,
        x_label="events",
    )

    late = [600, 650, 700, 750]
    for sigma_c in ("1.6", "2"):
        tibfit = {
            p.x: p.mean for p in data[f"{sigma_c}-6 TIBFIT"].points
        }
        base = {
            p.x: p.mean for p in data[f"{sigma_c}-6 Baseline"].points
        }
        gap = sum(tibfit[x] - base[x] for x in late) / len(late)
        assert gap > 0.10, f"sigma_correct={sigma_c}"
        # Early windows (low compromise): both systems near perfect.
        assert tibfit[50] > 0.9 and base[50] > 0.9
