"""Unit tests for the simulation harness (small, fast runs)."""

import pytest

from repro.experiments.harness import (
    CompromiseOrder,
    CorrectSpec,
    FaultSpec,
    SimulationRun,
)


def small_binary_run(**kwargs):
    defaults = dict(
        mode="binary",
        n_nodes=6,
        field_side=30.0,
        deployment_kind="grid",
        sensing_radius=100.0,
        r_error=5.0,
        lam=0.1,
        fault_rate=0.01,
        correct_spec=CorrectSpec(miss_rate=0.0),
        fault_spec=FaultSpec(level=0, drop_rate=1.0),
        channel_loss=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return SimulationRun(**defaults)


def small_location_run(**kwargs):
    defaults = dict(
        mode="location",
        n_nodes=25,
        field_side=50.0,
        deployment_kind="grid",
        sensing_radius=20.0,
        r_error=5.0,
        lam=0.25,
        fault_rate=0.1,
        correct_spec=CorrectSpec(sigma=1.0),
        fault_spec=FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
        channel_loss=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return SimulationRun(**defaults)


class TestBinaryRuns:
    def test_all_correct_nodes_reach_full_accuracy(self):
        run = small_binary_run(faulty_ids=())
        run.run(20)
        metrics = run.metrics()
        assert metrics.accuracy == 1.0
        assert metrics.events_total == 20

    def test_total_silence_from_all_faulty_drops_accuracy(self):
        run = small_binary_run(faulty_ids=range(6))
        run.run(10)
        # Everyone drops every report: no window ever opens.
        assert run.metrics().accuracy == 0.0

    def test_minority_faulty_is_masked(self):
        run = small_binary_run(faulty_ids=(0, 1))
        run.run(20)
        assert run.metrics().accuracy == 1.0

    def test_faulty_trust_decays(self):
        run = small_binary_run(faulty_ids=(0,))
        run.run(20)
        tis = run.trust_snapshot()
        assert tis[0] < 0.2
        assert all(tis[i] > 0.9 for i in range(1, 6))

    def test_false_alarms_are_counted(self):
        run = small_binary_run(
            faulty_ids=(0, 1, 2),
            fault_spec=FaultSpec(
                level=0, drop_rate=0.0, false_alarm_rate=1.0
            ),
        )
        run.run(10)
        metrics = run.metrics()
        assert metrics.quiet_windows == 10
        # 3-vs-3 ties fail, so the spurious reports never win...
        assert metrics.false_positive_decisions == 0
        # ...and accuracy on real events is unharmed.
        assert metrics.accuracy == 1.0


class TestLocationRuns:
    def test_clean_run_locates_all_events(self):
        run = small_location_run(faulty_ids=())
        run.run(15)
        metrics = run.metrics()
        assert metrics.accuracy == 1.0
        assert metrics.mean_localisation_error < 2.0

    def test_metrics_report_truly_faulty(self):
        run = small_location_run(faulty_ids=(3, 7))
        run.run(5)
        assert run.metrics().truly_faulty_nodes == (3, 7)

    def test_concurrent_batches_generate_multiple_events_per_round(self):
        run = small_location_run(concurrent_batch=2)
        run.run(10)
        assert len(run.events) == 20

    def test_diagnosis_isolates_liars(self):
        run = small_location_run(
            faulty_ids=(12,),
            fault_spec=FaultSpec(level=0, drop_rate=1.0),
            diagnosis_threshold=0.3,
        )
        run.run(25)
        assert 12 in run.metrics().diagnosed_nodes


class TestCompromiseSchedule:
    def test_scheduled_compromise_flips_behavior(self):
        run = small_binary_run(faulty_ids=())
        run.schedule_compromise(5, [0, 1])
        run.run(10)
        assert run.nodes[0].is_faulty
        assert run.metrics().truly_faulty_nodes == (0, 1)

    def test_compromise_only_applies_at_round(self):
        run = small_binary_run(faulty_ids=())
        run.schedule_compromise(100, [0])  # beyond the run
        run.run(5)
        assert not run.nodes[0].is_faulty

    def test_invalid_round_rejected(self):
        run = small_binary_run()
        with pytest.raises(ValueError):
            run.schedule_compromise(-1, [0])


class TestValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            small_binary_run(mode="other")

    def test_round_interval_must_cover_windows(self):
        with pytest.raises(ValueError):
            small_binary_run(round_interval=1.5, t_out=1.0)

    def test_unknown_faulty_ids_rejected(self):
        with pytest.raises(ValueError):
            small_binary_run(faulty_ids=(99,))

    def test_double_build_rejected(self):
        run = small_binary_run()
        run.build()
        with pytest.raises(RuntimeError):
            run.build()

    def test_invalid_round_count_rejected(self):
        run = small_binary_run()
        with pytest.raises(ValueError):
            run.run(0)

    def test_determinism_same_seed_same_metrics(self):
        a = small_location_run(faulty_ids=(1, 5, 9), seed=11)
        a.run(10)
        b = small_location_run(faulty_ids=(1, 5, 9), seed=11)
        b.run(10)
        assert a.metrics().accuracy == b.metrics().accuracy
        assert a.trust_snapshot() == b.trust_snapshot()
