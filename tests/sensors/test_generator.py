"""Unit tests for ground-truth event generation."""

import numpy as np
import pytest

from repro.network.geometry import Point, Region
from repro.sensors.generator import EventGenerator
from repro.simkernel.simulator import Simulator


class TestDraws:
    def test_locations_inside_region(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        for _ in range(200):
            assert unit_region.contains(gen.draw_location())

    def test_event_ids_are_unique_and_increasing(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        ids = [gen.next_event().event_id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_event_time_is_stamped(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        assert gen.next_event(time=3.5).time == 3.5

    def test_generated_counter(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        gen.next_event()
        gen.next_batch(3)
        assert gen.generated == 4

    def test_uniformity_over_quadrants(self, unit_region):
        gen = EventGenerator(unit_region, np.random.default_rng(3))
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            p = gen.draw_location()
            counts[(p.x >= 50.0) * 2 + (p.y >= 50.0)] += 1
        for c in counts:
            assert 850 <= c <= 1150


class TestBatches:
    def test_batch_respects_min_separation(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng, min_separation=10.0)
        for _ in range(50):
            batch = gen.next_batch(3)
            for i in range(3):
                for j in range(i + 1, 3):
                    d = batch[i].location.distance_to(batch[j].location)
                    assert d >= 10.0

    def test_batch_without_constraint(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        assert len(gen.next_batch(5)) == 5

    def test_impossible_separation_raises(self, rng):
        tiny = Region.square(1.0)
        gen = EventGenerator(
            tiny, rng, min_separation=10.0, max_rejections=100
        )
        with pytest.raises(RuntimeError):
            gen.next_batch(2)

    def test_invalid_batch_size_rejected(self, unit_region, rng):
        gen = EventGenerator(unit_region, rng)
        with pytest.raises(ValueError):
            gen.next_batch(0)

    def test_invalid_min_separation_rejected(self, unit_region, rng):
        with pytest.raises(ValueError):
            EventGenerator(unit_region, rng, min_separation=0.0)


class TestDrive:
    def test_drive_fires_count_rounds_at_interval(self, unit_region):
        sim = Simulator(seed=1)
        gen = EventGenerator(unit_region, sim.streams.get("events"))
        seen = []
        gen.drive(sim, interval=10.0, count=5,
                  on_event=lambda e: seen.append((sim.now, e.event_id)))
        sim.run()
        assert [t for t, _ in seen] == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_drive_with_batches(self, unit_region):
        sim = Simulator(seed=1)
        gen = EventGenerator(
            unit_region, sim.streams.get("events"), min_separation=5.0
        )
        seen = []
        gen.drive(sim, interval=10.0, count=3, batch_size=2,
                  on_event=lambda e: seen.append(e.event_id))
        sim.run()
        assert len(seen) == 6

    def test_drive_validates_arguments(self, unit_region):
        sim = Simulator(seed=1)
        gen = EventGenerator(unit_region, sim.streams.get("events"))
        with pytest.raises(ValueError):
            gen.drive(sim, interval=0.0, count=1, on_event=print)
        with pytest.raises(ValueError):
            gen.drive(sim, interval=1.0, count=0, on_event=print)
        with pytest.raises(ValueError):
            gen.drive(sim, interval=1.0, count=1, on_event=print,
                      batch_size=0)

    def test_drive_emits_trace_records(self, unit_region):
        sim = Simulator(seed=1)
        gen = EventGenerator(unit_region, sim.streams.get("events"))
        gen.drive(sim, interval=5.0, count=2, on_event=lambda e: None)
        sim.run()
        assert sim.trace.count("events.generated") == 2
