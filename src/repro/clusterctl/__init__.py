"""Cluster control plane: LEACH election, cluster heads, shadows, base station.

§2 adopts "the low energy, adaptive hierarchical clustering protocol
(LEACH) for cluster formation as well as CH election", extended with a
trust-index admission threshold that is *not* part of original LEACH.
§3.4 adds two shadow cluster heads per cluster plus base-station voting
to mask a single faulty CH.

* :mod:`repro.clusterctl.leach`        -- rotating, energy- and TI-aware
  cluster-head election and cluster affiliation.
* :mod:`repro.clusterctl.head`         -- the cluster-head process: report
  collection windows, decision engines, trust custody, diagnosis.
* :mod:`repro.clusterctl.shadow`       -- shadow cluster heads mirroring the
  CH's computation and escalating disagreements.
* :mod:`repro.clusterctl.base_station` -- the TI registry of record, CH
  candidacy vetoes, and SCH-dispute resolution.
"""

from repro.clusterctl.base_station import BaseStation
from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.clusterctl.leach import (
    EnergyModel,
    LeachConfig,
    LeachElection,
    RoundResult,
)
from repro.clusterctl.shadow import ShadowClusterHead
from repro.clusterctl.simulation import (
    LeadershipRound,
    RotatingClusterSimulation,
)

__all__ = [
    "LeadershipRound",
    "RotatingClusterSimulation",
    "BaseStation",
    "ClusterHead",
    "ClusterHeadConfig",
    "EnergyModel",
    "LeachConfig",
    "LeachElection",
    "RoundResult",
    "ShadowClusterHead",
]
