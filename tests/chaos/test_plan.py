"""Unit tests for the fault-plan DSL (repro.chaos.plan)."""

import pytest

from repro.chaos.plan import (
    EMPTY_PLAN,
    ChannelWindow,
    ChCrash,
    FaultPlan,
    NodeOutage,
    PartitionWindow,
    builtin_plans,
)


class TestValidation:
    def test_window_rejects_inverted_interval(self):
        with pytest.raises(ValueError, match="end must exceed start"):
            ChannelWindow(start=5.0, end=5.0)

    def test_window_rejects_negative_start(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChannelWindow(start=-1.0, end=5.0)

    def test_window_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="loss_probability"):
            ChannelWindow(start=0.0, end=1.0, loss_probability=1.5)

    def test_window_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="extra_delay"):
            ChannelWindow(start=0.0, end=1.0, extra_delay=-0.1)

    def test_outage_rejects_recovery_before_crash(self):
        with pytest.raises(ValueError, match="end must exceed start"):
            NodeOutage(node_id=1, start=5.0, end=4.0)

    def test_ch_crash_rejects_recovery_before_crash(self):
        with pytest.raises(ValueError, match="end must exceed start"):
            ChCrash(start=5.0, end=5.0)

    def test_partition_rejects_node_in_two_groups(self):
        with pytest.raises(ValueError, match="multiple"):
            PartitionWindow(start=0.0, end=1.0, groups=((1, 2), (2, 3)))

    def test_window_applies_respects_endpoint_filters(self):
        window = ChannelWindow(
            start=0.0, end=1.0, senders=(1, 2), receivers=(9,)
        )
        assert window.applies(1, 9)
        assert not window.applies(3, 9)
        assert not window.applies(1, 8)
        unfiltered = ChannelWindow(start=0.0, end=1.0)
        assert unfiltered.applies(123, 456)


class TestSerialisation:
    def _full_plan(self) -> FaultPlan:
        return FaultPlan(
            name="full",
            windows=(
                ChannelWindow(
                    start=1.0, end=2.0, loss_probability=0.5,
                    extra_delay=0.1, jitter=0.05,
                    duplicate_probability=0.25, senders=(1,),
                ),
            ),
            outages=(NodeOutage(node_id=3, start=2.0, end=4.0),
                     NodeOutage(node_id=4, start=2.0)),
            partitions=(
                PartitionWindow(start=1.0, end=3.0, groups=((0, 1), (2,))),
            ),
            ch_crashes=(ChCrash(start=5.0, failover=True),),
        )

    def test_json_round_trip_is_identity(self):
        plan = self._full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self._full_plan()
        path = plan.save(tmp_path / "plans" / "full.json")
        assert FaultPlan.load(path) == plan

    def test_from_dict_rejects_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="unknown FaultPlan"):
            FaultPlan.from_dict({"name": "x", "windoes": []})

    def test_from_dict_rejects_unknown_nested_field(self):
        with pytest.raises(ValueError, match="unknown ChannelWindow"):
            FaultPlan.from_dict(
                {"windows": [{"start": 0.0, "end": 1.0, "los": 0.5}]}
            )

    def test_empty_plan_detection(self):
        assert EMPTY_PLAN.is_empty()
        assert not self._full_plan().is_empty()


class TestGeneration:
    def test_random_plan_is_a_pure_function_of_seed(self):
        a = FaultPlan.random(seed=7, n_nodes=10, horizon=100.0)
        b = FaultPlan.random(seed=7, n_nodes=10, horizon=100.0)
        c = FaultPlan.random(seed=8, n_nodes=10, horizon=100.0)
        assert a == b
        assert a.name == "random-7"
        assert a != c

    def test_random_plans_validate_and_round_trip(self):
        for seed in range(25):
            plan = FaultPlan.random(seed=seed, n_nodes=8, horizon=50.0)
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_builtin_plans_cover_every_failure_family(self):
        plans = builtin_plans(horizon=120.0, n_nodes=10)
        assert set(plans) == {
            "empty", "burst-loss", "delay-spike", "dup-reorder",
            "node-churn", "partition", "ch-crash",
        }
        assert plans["empty"].is_empty()
        assert plans["burst-loss"].windows[0].loss_probability > 0
        assert plans["ch-crash"].ch_crashes[0].failover
