"""Baseline majority-voting success probability (§5, eqs. 1-3, Fig. 10).

Setup: ``N`` event neighbours, ``m`` faulty.  A correct node reports
correctly with probability ``p``; a faulty node with probability ``q``.
``X ~ Binomial(N - m, p)`` counts correct reports from correct nodes,
``Y ~ Binomial(m, q)`` from faulty nodes, and the event is identified
when ``Z = X + Y`` reaches a strict majority ``floor(N/2) + 1``.

The paper splits the convolution into eqs. (2) (``m <= N - m``) and (3)
(``m > N - m``); both are the same sum ``P(Z >= floor(N/2)+1)`` with the
roles of the two binomials swapped, which is how it is implemented
here.  Fig. 10 plots the curve for ``N = 10``, ``q = 0.5`` and ``p`` in
``{0.99, 0.95, 0.90, 0.85}`` -- showing the cliff once half the
neighbourhood is compromised.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def _binomial_pmf(n: int, k: int, p: float) -> float:
    """``P(Binomial(n, p) = k)`` with exact combinatorics."""
    if k < 0 or k > n:
        return 0.0
    return math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k))


def baseline_success_probability(
    n_neighbors: int, m_faulty: int, p_correct: float, q_faulty: float
) -> float:
    """``P(majority vote identifies the event)`` -- eqs. 1-3.

    Parameters
    ----------
    n_neighbors:
        ``N``, total event neighbours.
    m_faulty:
        ``m``, how many are faulty (``0 <= m <= N``).
    p_correct:
        Probability a correct node reports the event.
    q_faulty:
        Probability a faulty node reports the event.

    Returns
    -------
    The probability that strictly more than ``N/2`` of the ``N``
    neighbours report, i.e. ``P(X + Y >= floor(N/2) + 1)``.
    """
    if n_neighbors <= 0:
        raise ValueError(f"n_neighbors must be positive, got {n_neighbors}")
    if not 0 <= m_faulty <= n_neighbors:
        raise ValueError(
            f"m_faulty must be in [0, {n_neighbors}], got {m_faulty}"
        )
    for name, value in (("p_correct", p_correct), ("q_faulty", q_faulty)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")

    n_correct = n_neighbors - m_faulty
    majority = n_neighbors // 2 + 1
    total = 0.0
    # Convolution P(X + Y = t) summed over t >= majority; equivalent to
    # eqs. (2)/(3) -- their case split merely reorders the same terms.
    for x in range(n_correct + 1):
        px = _binomial_pmf(n_correct, x, p_correct)
        if px == 0.0:
            continue
        y_min = max(0, majority - x)
        for y in range(y_min, m_faulty + 1):
            total += px * _binomial_pmf(m_faulty, y, q_faulty)
    return min(1.0, total)


def success_curve(
    n_neighbors: int,
    p_correct: float,
    q_faulty: float,
    m_values: Sequence[int] = None,
) -> List[Tuple[int, float]]:
    """``(m, P(success))`` pairs across a sweep of faulty counts."""
    if m_values is None:
        m_values = range(n_neighbors + 1)
    return [
        (m, baseline_success_probability(n_neighbors, m, p_correct, q_faulty))
        for m in m_values
    ]


def figure10_series(
    n_neighbors: int = 10,
    q_faulty: float = 0.5,
    p_values: Sequence[float] = (0.99, 0.95, 0.90, 0.85),
) -> Dict[float, List[Tuple[float, float]]]:
    """The Fig. 10 dataset: one curve per ``p``.

    Returns ``{p: [(percent_faulty, P(success)), ...]}`` with the x-axis
    expressed as percentage of the neighbourhood compromised, matching
    the paper's figure.
    """
    series: Dict[float, List[Tuple[float, float]]] = {}
    for p in p_values:
        curve = []
        for m in range(n_neighbors + 1):
            percent = 100.0 * m / n_neighbors
            curve.append(
                (
                    percent,
                    baseline_success_probability(n_neighbors, m, p, q_faulty),
                )
            )
        series[p] = curve
    return series


def crossover_m(
    n_neighbors: int,
    p_correct: float,
    q_faulty: float,
    threshold: float = 0.5,
) -> int:
    """Smallest ``m`` at which success probability falls below ``threshold``.

    Returns ``n_neighbors + 1`` when the curve never crosses -- i.e. the
    baseline survives any number of these (weak) faulty nodes.
    """
    for m in range(n_neighbors + 1):
        if (
            baseline_success_probability(n_neighbors, m, p_correct, q_faulty)
            < threshold
        ):
            return m
    return n_neighbors + 1
