#!/usr/bin/env python
"""Save and compare kernel microbenchmark baselines.

``save`` runs the substrate microbenches
(``benchmarks/test_bench_kernel_throughput.py``) and writes the median
ns/op of each to ``BENCH_kernel.json`` -- the repo's performance
trajectory file.  ``compare`` re-runs them and fails loudly when any
bench regressed more than the threshold (default 25%) against the saved
baseline, so a hot-path regression is caught before it silently
stretches every sweep.

Usage (from the repo root)::

    python benchmarks/bench_baseline.py save
    python benchmarks/bench_baseline.py compare [--threshold 0.25]

or via ``make bench-save`` / ``make bench-compare``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = "benchmarks/test_bench_kernel_throughput.py"
BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"


def run_benches() -> dict:
    """Execute the kernel microbenches; return ``{name: median_ns}``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                BENCH_FILE,
                "--benchmark-only",
                f"--benchmark-json={json_path}",
                "-q",
            ],
            cwd=REPO_ROOT,
            env=env,
        )
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {result.returncode})")
        data = json.loads(json_path.read_text())
    return {
        bench["name"]: bench["stats"]["median"] * 1e9
        for bench in data["benchmarks"]
    }


def git_sha() -> "str | None":
    """Short commit hash of the snapshot being measured (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def queue_backend() -> str:
    """The scheduler backend the bench subprocess will resolve."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.simkernel.calqueue import resolve_queue_backend

        return resolve_queue_backend()
    finally:
        sys.path.pop(0)


def cmd_save(args: argparse.Namespace) -> int:
    medians = run_benches()
    baseline = {
        "note": "median ns/op per kernel microbench; see `make bench-compare`",
        "git_sha": git_sha(),
        "queue_backend": queue_backend(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {name: round(ns, 1) for name, ns in sorted(medians.items())},
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH.relative_to(REPO_ROOT)}:")
    for name, ns in sorted(medians.items()):
        print(f"  {name}: {ns:,.0f} ns")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if not BASELINE_PATH.exists():
        raise SystemExit(
            f"no baseline at {BASELINE_PATH.name}; run `make bench-save` first"
        )
    saved = json.loads(BASELINE_PATH.read_text())["benchmarks"]
    fresh = run_benches()
    failures = []
    for name in sorted(fresh):
        new_ns = fresh[name]
        old_ns = saved.get(name)
        if old_ns is None:
            print(f"  NEW      {name}: {new_ns:,.0f} ns (no baseline)")
            continue
        delta = (new_ns - old_ns) / old_ns
        status = "OK" if delta <= args.threshold else "REGRESSED"
        print(
            f"  {status:<9}{name}: {old_ns:,.0f} -> {new_ns:,.0f} ns "
            f"({delta:+.1%})"
        )
        if delta > args.threshold:
            failures.append(name)
    if failures:
        print(
            f"\nFAIL: {len(failures)} bench(es) regressed more than "
            f"{args.threshold:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nall benches within threshold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("save", help="run benches and write BENCH_kernel.json")
    p_cmp = sub.add_parser("compare", help="fail on regression vs. baseline")
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated slowdown per bench (default 0.25 = 25%%)",
    )
    args = parser.parse_args()
    return {"save": cmd_save, "compare": cmd_compare}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
