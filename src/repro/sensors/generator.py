"""Ground-truth event generation.

§4: "Events are generated at regular time intervals by the *event
generator*, using a uniform random variable to generate X and Y
coordinates uniformly distributed in the network.  The event generator
informs the event neighbors of the event and its location."

For the concurrent-event runs (Fig. 7), batches of simultaneous events
are drawn with a minimum pairwise separation of ``r_error`` -- §3.3's
standing assumption that "concurrent events cannot occur closer than a
distance of r_error".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.network.geometry import Point, Region
from repro.simkernel.simulator import Simulator


@dataclass(frozen=True)
class GroundTruthEvent:
    """One real event as known to the generator (and to the metrics)."""

    event_id: int
    time: float
    location: Point


class EventGenerator:
    """Draws ground-truth events uniformly over a region.

    Parameters
    ----------
    region:
        The deployment field.
    rng:
        Random generator (use the ``"events"`` stream so event placement
        is decoupled from channel noise and fault draws).
    min_separation:
        Minimum pairwise distance between events of one concurrent
        batch.  ``None`` disables the constraint for single-event runs.
    max_rejections:
        Safety bound on rejection sampling for separated batches.
    """

    def __init__(
        self,
        region: Region,
        rng: np.random.Generator,
        min_separation: Optional[float] = None,
        max_rejections: int = 10_000,
    ) -> None:
        if min_separation is not None and min_separation <= 0:
            raise ValueError("min_separation must be positive when set")
        if max_rejections <= 0:
            raise ValueError("max_rejections must be positive")
        self.region = region
        self._rng = rng
        self.min_separation = min_separation
        self.max_rejections = max_rejections
        self._ids: Iterator[int] = itertools.count(1)
        self.generated = 0

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------
    def draw_location(self) -> Point:
        """One uniform location in the region."""
        return Point(
            float(self._rng.uniform(self.region.x_min, self.region.x_max)),
            float(self._rng.uniform(self.region.y_min, self.region.y_max)),
        )

    def next_event(self, time: float = 0.0) -> GroundTruthEvent:
        """One event at ``time`` with a fresh id."""
        self.generated += 1
        return GroundTruthEvent(
            event_id=next(self._ids), time=time, location=self.draw_location()
        )

    def next_batch(self, size: int, time: float = 0.0) -> List[GroundTruthEvent]:
        """``size`` simultaneous events, pairwise at least
        ``min_separation`` apart (when configured).

        Raises ``RuntimeError`` if the separation constraint cannot be
        satisfied within ``max_rejections`` draws (region too small for
        the batch).
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        locations: List[Point] = []
        rejections = 0
        while len(locations) < size:
            candidate = self.draw_location()
            if self.min_separation is not None and any(
                candidate.distance_to(p) < self.min_separation
                for p in locations
            ):
                rejections += 1
                if rejections > self.max_rejections:
                    raise RuntimeError(
                        f"could not place {size} events with separation "
                        f">= {self.min_separation} in {self.region}"
                    )
                continue
            locations.append(candidate)
        self.generated += size
        return [
            GroundTruthEvent(
                event_id=next(self._ids), time=time, location=loc
            )
            for loc in locations
        ]

    # ------------------------------------------------------------------
    # DES driving
    # ------------------------------------------------------------------
    def drive(
        self,
        sim: Simulator,
        interval: float,
        count: int,
        on_event: Callable[[GroundTruthEvent], None],
        batch_size: int = 1,
        start: Optional[float] = None,
    ) -> None:
        """Schedule ``count`` rounds of events on the simulator.

        Each round at ``start + k * interval`` emits ``batch_size``
        simultaneous events (separated per ``min_separation``) and calls
        ``on_event`` for each -- the DES analogue of the paper's event
        generator "informing the event neighbors".
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        first = sim.now + interval if start is None else start

        def fire_round() -> None:
            for event in self.next_batch(batch_size, time=sim.now):
                sim.trace.emit(
                    sim.now,
                    "events.generated",
                    event_id=event.event_id,
                    x=event.location.x,
                    y=event.location.y,
                )
                on_event(event)

        sim.every(interval, fire_round, start=first, count=count,
                  label="event-generator")
