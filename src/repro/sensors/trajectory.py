"""Moving-target trajectories (§3.2's motivating tracking problem).

"One sensor network problem that can be solved through this extension
is where a network is attempting to track a mobile sensor node that is
transmitting a signal as it moves throughout the network."  A
:class:`Trajectory` turns a waypoint path into a position-of-time
function; :class:`TargetTracker` samples it at a fixed period, emitting
one ground-truth event per sample for the sensing layer -- each "event"
is the target's transmission at that instant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.network.geometry import Point
from repro.sensors.generator import GroundTruthEvent
from repro.simkernel.simulator import Simulator


class Trajectory:
    """Piecewise-linear motion through waypoints at constant speed.

    Parameters
    ----------
    waypoints:
        At least two distinct points; the target starts at the first at
        ``t = start_time`` and visits them in order.
    speed:
        Constant ground speed (distance per time unit).
    start_time:
        When the target enters the field.
    """

    def __init__(
        self,
        waypoints: Sequence[Point],
        speed: float,
        start_time: float = 0.0,
    ) -> None:
        if len(waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.waypoints = list(waypoints)
        self.speed = speed
        self.start_time = start_time
        # Precompute cumulative arrival times at each waypoint.
        self._arrivals: List[float] = [start_time]
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            leg_time = a.distance_to(b) / speed
            self._arrivals.append(self._arrivals[-1] + leg_time)

    @property
    def end_time(self) -> float:
        """When the target reaches the final waypoint."""
        return self._arrivals[-1]

    @property
    def duration(self) -> float:
        """Total travel time."""
        return self.end_time - self.start_time

    def position_at(self, t: float) -> Point:
        """Target position at time ``t`` (clamped to the endpoints)."""
        if t <= self.start_time:
            return self.waypoints[0]
        if t >= self.end_time:
            return self.waypoints[-1]
        for i in range(len(self.waypoints) - 1):
            t0, t1 = self._arrivals[i], self._arrivals[i + 1]
            if t0 <= t <= t1:
                if t1 == t0:
                    return self.waypoints[i]
                frac = (t - t0) / (t1 - t0)
                a, b = self.waypoints[i], self.waypoints[i + 1]
                return Point(
                    a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac
                )
        return self.waypoints[-1]

    def sample(self, period: float) -> List[Tuple[float, Point]]:
        """``(t, position)`` samples every ``period`` over the run."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        out = []
        t = self.start_time
        while t <= self.end_time:
            out.append((t, self.position_at(t)))
            t += period
        return out


class TargetTracker:
    """Emits the moving target's transmissions as ground-truth events.

    Parameters
    ----------
    trajectory:
        The target's path.
    period:
        Transmission (sampling) period.  §3.3's machinery assumes
        successive events are separable, so pick
        ``period >= T_out`` or keep successive positions at least
        ``r_error`` apart (speed * period >= r_error).
    on_event:
        Callback receiving each :class:`GroundTruthEvent`.
    """

    _ids: Iterator[int] = itertools.count(100_000)

    def __init__(
        self,
        trajectory: Trajectory,
        period: float,
        on_event: Callable[[GroundTruthEvent], None],
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.trajectory = trajectory
        self.period = period
        self._on_event = on_event
        self.emitted: List[GroundTruthEvent] = []

    def start(self, sim: Simulator) -> None:
        """Schedule every transmission on the simulator."""
        for t, position in self.trajectory.sample(self.period):
            when = max(t, sim.now)
            sim.at(when, self._emit, when, position, label="target-tx")

    def _emit(self, t: float, position: Point) -> None:
        event = GroundTruthEvent(
            event_id=next(self._ids), time=t, location=position
        )
        self.emitted.append(event)
        self._on_event(event)

    def estimated_track_error(
        self, decisions, r_error: float
    ) -> Tuple[int, Optional[float]]:
        """(samples located, mean error) of a decision log vs the track.

        A sample counts as located when some upheld decision within its
        period window lies within ``r_error`` of the true position.
        """
        located = 0
        errors: List[float] = []
        for event in self.emitted:
            best = None
            for d in decisions:
                if not d.occurred or d.location is None:
                    continue
                if not event.time <= d.time < event.time + self.period:
                    continue
                err = d.location.distance_to(event.location)
                if err <= r_error and (best is None or err < best):
                    best = err
            if best is not None:
                located += 1
                errors.append(best)
        mean_error = sum(errors) / len(errors) if errors else None
        return located, mean_error
