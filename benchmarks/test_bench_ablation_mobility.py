"""Extension bench: mobility and the CH's position knowledge (§2).

§2 allows mobile networks "as long as it is possible for the CH to
estimate the positions of its cluster nodes during decision making".
This bench makes that proviso quantitative.  Nodes move by random
waypoint; the CH decodes ``(r, theta)`` reports against either

* live truth (the §2 assumption),
* a snapshot refreshed every 10 time units (mild staleness), or
* a snapshot refreshed every 100 time units (positions drift several
  units between refreshes -- comparable to r_error).

Expected: live knowledge keeps accuracy near the stationary level;
mild staleness costs little; heavy staleness degrades localisation
because decoded report positions inherit the CH's position error.
"""

import numpy as np

from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.core.trust import TrustParameters
from repro.network.geometry import Region
from repro.network.mobility import (
    MobilityConfig,
    PositionTracker,
    RandomWaypointMobility,
)
from repro.network.radio import ChannelConfig, RadioChannel
from repro.network.topology import grid_deployment
from repro.sensors.generator import EventGenerator
from repro.sensors.node import SensorNode
from repro.sensors.sensing import SensingConfig, SensingModel
from repro.sensors.specs import CorrectSpec, make_correct_behavior
from repro.experiments.metrics import score_run
from repro.experiments.reporting import render_table
from repro.simkernel.simulator import Simulator
from benchmarks._shared import run_once

N_NODES = 100
EVENTS = 60
SEED = 59
CH_ID = 10_000


def run_mobile(refresh_interval):
    sim = Simulator(seed=SEED)
    channel = RadioChannel(sim, ChannelConfig(loss_probability=0.0))
    region = Region.square(100.0)
    truth = grid_deployment(N_NODES, region)
    tracker = PositionTracker(truth, refresh_interval=refresh_interval)
    sensing = SensingModel(
        SensingConfig(sensing_radius=20.0, location_sigma=1.6)
    )
    trust_params = TrustParameters(lam=0.25, fault_rate=0.1)

    ch = ClusterHead(
        node_id=CH_ID,
        position=region.center,
        deployment=tracker.view,  # the CH's (possibly stale) knowledge
        config=ClusterHeadConfig(
            mode="location",
            t_out=1.0,
            sensing_radius=20.0,
            r_error=5.0,
            trust=trust_params,
        ),
    )
    channel.register(ch)

    nodes = {}
    for node_id in truth.node_ids():
        node = SensorNode(
            node_id=node_id,
            position=truth.position_of(node_id),
            behavior=make_correct_behavior(CorrectSpec(sigma=1.6), sensing),
            sensing=sensing,
            ch_id=CH_ID,
            rng=sim.streams.get(f"node-{node_id}"),
            region=region,
        )
        nodes[node_id] = node
        channel.register(node)

    mobility = RandomWaypointMobility(
        truth,
        region,
        MobilityConfig(speed_min=0.3, speed_max=0.8, tick=1.0),
        sim.streams.get("mobility"),
        on_move=lambda node_id, pos: setattr(
            nodes[node_id], "position", pos
        ),
    )
    mobility.start(sim)
    tracker.start(sim)

    generator = EventGenerator(region, sim.streams.get("events"))
    events = []

    def fire():
        event = generator.next_event(time=sim.now)
        events.append(event)
        for node in nodes.values():
            node.sense_event(event)

    for k in range(EVENTS):
        sim.at((k + 1) * 10.0, fire, priority=-1)
    # The mobility (and refresh) timers are perpetual: run to a bound
    # rather than draining the queue.
    horizon = (EVENTS + 1) * 10.0
    sim.run(until=horizon)
    ch.flush()
    sim.run(until=horizon + 5.0)

    outcomes, _ = score_run(
        events, ch.decisions, round_interval=10.0, r_error=5.0
    )
    detected = [o for o in outcomes if o.detected]
    mean_err = (
        sum(o.localisation_error for o in detected) / len(detected)
        if detected
        else None
    )
    staleness = tracker.staleness()
    return {
        "accuracy": len(detected) / len(outcomes),
        "mean_error": mean_err,
        "max_staleness": max(staleness.values()),
    }


def test_ablation_mobility_position_knowledge(benchmark):
    def workload():
        return {
            "live positions (§2 assumption)": run_mobile(None),
            "snapshot every 10": run_mobile(10.0),
            "snapshot every 100": run_mobile(100.0),
        }

    results = run_once(benchmark, workload)
    print()
    print(render_table(
        ["CH position knowledge", "accuracy", "mean loc. error",
         "max position staleness"],
        [
            (name, f"{r['accuracy']:.3f}",
             f"{r['mean_error']:.2f}" if r["mean_error"] else "-",
             f"{r['max_staleness']:.2f}")
            for name, r in results.items()
        ],
    ))

    live = results["live positions (§2 assumption)"]
    mild = results["snapshot every 10"]
    heavy = results["snapshot every 100"]

    # Live knowledge keeps a mobile, honest network near-perfect.
    assert live["accuracy"] >= 0.95
    # Mild staleness costs little.
    assert mild["accuracy"] >= live["accuracy"] - 0.10
    # Heavy staleness visibly degrades detection/localisation.
    assert heavy["accuracy"] <= mild["accuracy"]
    assert heavy["max_staleness"] > mild["max_staleness"]
