"""Series containers and terminal rendering for experiment output.

The bench harness prints the same rows/series the paper's figures plot;
these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepPoint:
    """One x-position of a sweep with trial statistics."""

    x: float
    mean: float
    std: float = 0.0
    trials: int = 1


@dataclass
class Series:
    """A named curve, e.g. ``"Lvl 0 1.6-4.25 TIBFIT"``."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, x: float, samples: Sequence[float]) -> None:
        """Append a point from raw per-trial samples."""
        if not samples:
            raise ValueError("samples must be non-empty")
        n = len(samples)
        mean = sum(samples) / n
        var = sum((s - mean) ** 2 for s in samples) / n
        self.points.append(
            SweepPoint(x=x, mean=mean, std=math.sqrt(var), trials=n)
        )

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def value_at(self, x: float) -> Optional[float]:
        """Mean at an exact x, or None."""
        for p in self.points:
            if p.x == x:
                return p.mean
        return None


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(cells):
        line = " | ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series_table(
    series_map: Dict[str, Series],
    x_label: str = "x",
    value_format: str = "{:.3f}",
) -> str:
    """All series as one table: the x column plus one column per series.

    Points are aligned on the union of x values; missing cells show "-".
    """
    xs = sorted({p.x for s in series_map.values() for p in s.points})
    headers = [x_label] + list(series_map.keys())
    rows = []
    for x in xs:
        row: List[object] = [f"{x:g}"]
        for label in series_map:
            v = series_map[label].value_at(x)
            row.append("-" if v is None else value_format.format(v))
        rows.append(row)
    return render_table(headers, rows)


def render_parameter_sheet(rows: Sequence[Tuple[str, str]], title: str) -> str:
    """A two-column parameter table mirroring the paper's Tables 1-2."""
    body = render_table(["Parameter", "Value"], rows)
    bar = "=" * max(len(title), 20)
    return f"{title}\n{bar}\n{body}"


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """A one-line unicode sparkline of a series.

    ``lo``/``hi`` pin the scale (e.g. 0..1 for accuracies) so separate
    sparklines are comparable; they default to the data range.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[-1] * len(values)
    span = hi - lo
    out = []
    for v in values:
        frac = (min(max(v, lo), hi) - lo) / span
        idx = min(int(frac * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def render_series_sparklines(
    series_map: Dict[str, Series], lo: float = 0.0, hi: float = 1.0
) -> str:
    """One labelled sparkline per series, on a shared scale."""
    width = max((len(label) for label in series_map), default=0)
    lines = []
    for label, series in series_map.items():
        spark = render_sparkline(series.means(), lo=lo, hi=hi)
        lines.append(f"{label.ljust(width)}  {spark}")
    return "\n".join(lines)
