#!/usr/bin/env python
"""Perimeter watch: intrusion localisation with compromised sensors.

The paper's motivating military scenario (§1): "sense any movement
within a cordoned-off area".  A 10x10 grid of sensors watches a 100x100
field; intrusions occur at random locations; 45% of the sensors have
been captured by the adversary and report wrong locations (level-1
smart liars that throttle their lying to avoid detection).

The example shows:
  * localisation accuracy for TIBFIT vs. the majority baseline,
  * how the smart liars' own trust-index estimates forced them to
    throttle,
  * CH-side diagnosis: which nodes the trust table would isolate.

Run:
    python examples/perimeter_watch.py
"""

import numpy as np

from repro.experiments.harness import CorrectSpec, FaultSpec, SimulationRun
from repro.experiments.reporting import render_table
from repro.sensors.faults import Level1Behavior

FIELD = 100.0
N_NODES = 100
COMPROMISED = 45
EVENTS = 120
SEED = 7


def build_run(use_trust: bool) -> SimulationRun:
    rng = np.random.default_rng(SEED)
    captured = tuple(
        int(x) for x in rng.choice(N_NODES, size=COMPROMISED, replace=False)
    )
    run = SimulationRun(
        mode="location",
        n_nodes=N_NODES,
        field_side=FIELD,
        deployment_kind="grid",
        sensing_radius=20.0,
        r_error=5.0,
        lam=0.25,
        fault_rate=0.1,
        use_trust=use_trust,
        correct_spec=CorrectSpec(sigma=1.6),
        fault_spec=FaultSpec(
            level=1,            # smart, independent liars
            drop_rate=0.25,
            sigma=4.25,
            lower_ti=0.5,
            upper_ti=0.8,
        ),
        faulty_ids=captured,
        channel_loss=0.008,
        seed=SEED,
    )
    run.run(EVENTS)
    return run


def main() -> None:
    print(f"Perimeter watch: {N_NODES} sensors, {COMPROMISED}% captured "
          f"(level-1 smart liars), {EVENTS} intrusions\n")

    tibfit = build_run(use_trust=True)
    baseline = build_run(use_trust=False)
    mt, mb = tibfit.metrics(), baseline.metrics()

    print(render_table(
        ["system", "intrusions localised", "mean error (units)"],
        [
            ("TIBFIT", f"{mt.accuracy:.1%}",
             f"{mt.mean_localisation_error:.2f}"),
            ("Baseline", f"{mb.accuracy:.1%}",
             f"{mb.mean_localisation_error:.2f}"
             if mb.mean_localisation_error else "-"),
        ],
    ))

    # How hard did the trust index throttle the captured sensors?
    throttled = 0
    honest_phase = 0
    for node_id in mt.truly_faulty_nodes:
        behavior = tibfit.nodes[node_id].behavior
        if isinstance(behavior, Level1Behavior):
            if behavior.estimator.ti < 1.0:
                throttled += 1
            if not behavior.currently_lying:
                honest_phase += 1
    print(f"\nCaptured sensors throttled by their own TI estimate: "
          f"{throttled}/{COMPROMISED}")
    print(f"Captured sensors stuck in forced-honest phase at the end: "
          f"{honest_phase}/{COMPROMISED}")

    # What would CH-side diagnosis isolate at a 0.5 threshold?
    trust = tibfit.trust_snapshot()
    suspects = sorted(n for n, ti in trust.items() if ti < 0.5)
    true_positives = set(suspects) & set(mt.truly_faulty_nodes)
    print(f"\nNodes below TI 0.5: {len(suspects)} "
          f"({len(true_positives)} genuinely captured, "
          f"{len(suspects) - len(true_positives)} false suspicion)")
    print("\nThe trust index both masks the liars' reports and keeps "
          "them too busy rebuilding trust to lie effectively.")


if __name__ == "__main__":
    main()
