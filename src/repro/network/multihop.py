"""Multi-hop reliable dissemination (§3.4's extension).

"TIBFIT can also be extended to scenarios where the sensing nodes are
more than one hop away from the data sink.  The data sink still needs
to know the location of the constituent node and [a] reliable data
dissemination primitive needs to be introduced to ensure that the data
sent out by the sensing nodes reliably reach the data sink without
alteration."

This module supplies that primitive on top of the lossy radio channel:

* :class:`RoutingTable` -- greedy geographic next-hop routes computed
  over a radio-range connectivity graph (the CH knows every node's
  position, §2, so route construction is sink-side knowledge).
* :class:`ReliableRelay` -- a per-node forwarding process with
  hop-by-hop acknowledgements and bounded retransmission, giving
  at-least-once delivery over per-link Bernoulli loss; duplicate
  suppression at every hop restores effectively-once semantics.

Integrity ("without alteration") is modelled by construction: relays
forward the original frozen message object; a Byzantine relay is
modelled as a *dropping* relay (suppression), which the retransmission
plus multi-path route repair masks, while report *content* forgery is
already handled by TIBFIT's trust layer itself -- a relay cannot forge
another node's report without it being charged to that node's TI,
which is exactly the arbitrary-data-fault model of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.geometry import Point
from repro.network.messages import Message
from repro.network.node import NetworkNode
from repro.network.radio import RadioChannel
from repro.network.topology import Deployment
from repro.simkernel.simulator import Simulator

_relayed_ids = itertools.count(1)


@dataclass(frozen=True)
class RelayedMessage(Message):
    """A payload wrapped for multi-hop forwarding."""

    payload: Optional[Message] = None
    origin: int = -1
    destination: int = -1
    relay_id: int = field(default_factory=lambda: next(_relayed_ids))
    hop: int = 0


@dataclass(frozen=True)
class RelayAck(Message):
    """Hop-by-hop acknowledgement for a relayed message."""

    relay_id: int = 0


class RoutingTable:
    """Greedy-geographic next hops over a unit-disk connectivity graph.

    Parameters
    ----------
    deployment:
        Node positions (including the sink's, which may be added with
        :meth:`add_endpoint`).
    radio_range:
        Two nodes are link-connected when within this distance.

    Greedy forwarding picks the neighbour strictly closest to the
    destination; when no neighbour improves (a void), the route falls
    back to the neighbour minimising distance-to-destination among all,
    with a TTL bounding any resulting loop.
    """

    def __init__(self, deployment: Deployment, radio_range: float) -> None:
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        self.deployment = deployment
        self.radio_range = radio_range
        self._extra: Dict[int, Point] = {}

    def add_endpoint(self, node_id: int, position: Point) -> None:
        """Register a routable endpoint outside the deployment (the sink)."""
        self._extra[node_id] = position

    def _position(self, node_id: int) -> Point:
        if node_id in self._extra:
            return self._extra[node_id]
        return self.deployment.position_of(node_id)

    def _all_ids(self) -> List[int]:
        return sorted(set(self.deployment.node_ids()) | set(self._extra))

    def neighbors(self, node_id: int) -> List[int]:
        """Link-connected neighbours of ``node_id``."""
        here = self._position(node_id)
        return [
            other
            for other in self._all_ids()
            if other != node_id
            and here.distance_to(self._position(other)) <= self.radio_range
        ]

    def next_hop(
        self,
        current: int,
        destination: int,
        exclude: Sequence[int] = (),
    ) -> Optional[int]:
        """Greedy next hop from ``current`` toward ``destination``.

        ``exclude`` removes known-bad relays (e.g. diagnosed nodes).
        Returns ``None`` when current has no usable neighbour.
        """
        if current == destination:
            return destination
        try:
            target = self._position(destination)
        except KeyError:
            return None  # unknown destination: unroutable
        here = self._position(current)
        candidates = [
            n for n in self.neighbors(current) if n not in exclude
        ]
        if destination in candidates:
            return destination
        if not candidates:
            return None
        improving = [
            n
            for n in candidates
            if self._position(n).distance_to(target)
            < here.distance_to(target)
        ]
        pool = improving if improving else candidates
        return min(
            pool,
            key=lambda n: (self._position(n).distance_to(target), n),
        )

    def route(
        self,
        source: int,
        destination: int,
        max_hops: int = 64,
        exclude: Sequence[int] = (),
    ) -> Optional[List[int]]:
        """Full hop list from source to destination, or None if unroutable."""
        if source == destination:
            return [source]
        path = [source]
        seen: Set[int] = {source}
        current = source
        for _ in range(max_hops):
            nxt = self.next_hop(
                current, destination, exclude=tuple(exclude) + tuple(seen - {destination})
            )
            if nxt is None:
                return None
            path.append(nxt)
            if nxt == destination:
                return path
            if nxt in seen:
                return None  # greedy loop: unroutable under exclusions
            seen.add(nxt)
            current = nxt
        return None

    def is_connected(self, source: int, destination: int) -> bool:
        """Whether greedy routing can reach destination from source."""
        return self.route(source, destination) is not None


class ReliableRelay(NetworkNode):
    """A store-and-forward relay with hop-by-hop ACK/retransmit.

    Parameters
    ----------
    node_id / position:
        Network identity (usually co-hosted with a sensing node).
    routing:
        Shared routing table.
    ack_timeout:
        Retransmit when no ACK arrives within this window.
    max_retries:
        Attempts per hop before the message is dropped (and traced).
    deliver_local:
        Callback invoked with the payload when this relay is the
        destination (the sink's relay hands reports to the CH logic).
    drop_everything:
        Fault-injection switch: a Byzantine relay that silently
        discards traffic instead of forwarding it.
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        routing: RoutingTable,
        ack_timeout: float = 0.2,
        max_retries: int = 3,
        deliver_local=None,
        drop_everything: bool = False,
    ) -> None:
        super().__init__(node_id, position)
        if ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.routing = routing
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self._deliver_local = deliver_local
        self.drop_everything = drop_everything
        self._seen_relay_ids: Set[int] = set()
        self._pending: Dict[int, dict] = {}
        self.forwarded = 0
        self.delivered_local = 0
        self.dropped_after_retries = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def originate(self, payload: Message, destination: int) -> Optional[int]:
        """Inject ``payload`` toward ``destination``; returns relay id."""
        wrapped = RelayedMessage(
            sender=self.node_id,
            payload=payload,
            origin=self.node_id,
            destination=destination,
        )
        return self._forward(wrapped)

    def _forward(self, message: RelayedMessage) -> Optional[int]:
        if message.destination == self.node_id:
            self._deliver(message)
            return message.relay_id
        nxt = self.routing.next_hop(self.node_id, message.destination)
        if nxt is None:
            self.sim.trace.emit(
                self.sim.now,
                "relay.unroutable",
                node=self.node_id,
                destination=message.destination,
            )
            return None
        outgoing = RelayedMessage(
            sender=self.node_id,
            payload=message.payload,
            origin=message.origin,
            destination=message.destination,
            relay_id=message.relay_id,
            hop=message.hop + 1,
        )
        self._pending[message.relay_id] = {
            "message": outgoing,
            "next_hop": nxt,
            "attempts": 0,
        }
        self._attempt(message.relay_id)
        return message.relay_id

    def _attempt(self, relay_id: int) -> None:
        state = self._pending.get(relay_id)
        if state is None:
            return
        if state["attempts"] > self.max_retries:
            del self._pending[relay_id]
            self.dropped_after_retries += 1
            self.sim.trace.emit(
                self.sim.now,
                "relay.gave-up",
                node=self.node_id,
                relay_id=relay_id,
                next_hop=state["next_hop"],
            )
            return
        state["attempts"] += 1
        self.send(state["next_hop"], state["message"])
        self.sim.after(
            self.ack_timeout,
            self._attempt,
            relay_id,
            label=f"relay-retry-{relay_id}",
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if isinstance(message, RelayAck):
            self._pending.pop(message.relay_id, None)
            return
        if not isinstance(message, RelayedMessage):
            return
        # Hop-by-hop ACK even for duplicates (the ACK may have been lost).
        self.send(message.sender, RelayAck(sender=self.node_id,
                                           relay_id=message.relay_id))
        if message.relay_id in self._seen_relay_ids:
            return
        self._seen_relay_ids.add(message.relay_id)
        if self.drop_everything:
            self.sim.trace.emit(
                self.sim.now,
                "relay.byzantine-drop",
                node=self.node_id,
                relay_id=message.relay_id,
            )
            return
        if message.destination == self.node_id:
            self._deliver(message)
        else:
            self.forwarded += 1
            self._forward(message)

    def _deliver(self, message: RelayedMessage) -> None:
        self.delivered_local += 1
        self.sim.trace.emit(
            self.sim.now,
            "relay.delivered",
            node=self.node_id,
            origin=message.origin,
            hops=message.hop,
        )
        if self._deliver_local is not None and message.payload is not None:
            self._deliver_local(message.payload)
