"""Event-report clustering heuristic (§3.2, steps 1-5).

After ``T_out`` elapses, the cluster head groups the collected location
reports into *event clusters* of radius ``r_error`` -- each a candidate
event location.  The heuristic is K-means-like but chooses its own K:

1. compute and sort all pairwise distances between reports;
2. seed two clusters at the farthest pair of reports;
3. any report farther than ``r_error`` from every existing centre seeds
   a new cluster, until all remaining reports are within ``r_error`` of
   some centre;
4. assign every remaining report to its nearest centre and update each
   cluster's centre of gravity;
5. if two or more centres fall within ``r_error`` of one another, merge
   them at the weighted average of the centres and repeat the rounds
   until no membership changes.

Reports whose location is off by more than ``r_error`` end up in their
own (small) clusters and are naturally out-voted -- "this design
successfully throws out event reports from nodes that make a
localization error of more than r_error" (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.network.geometry import (
    Point,
    centroid,
    farthest_pair,
    weighted_centroid,
)

_MAX_ROUNDS = 100


@dataclass(frozen=True)
class ReportCluster:
    """One event cluster: member report indices and the centre of gravity.

    ``indices`` refer to positions in the report sequence passed to
    :func:`cluster_reports`, so callers can map members back to the
    original reports (and thus reporting nodes).
    """

    indices: Tuple[int, ...]
    center: Point

    def __len__(self) -> int:
        return len(self.indices)


def cluster_reports(
    locations: Sequence[Point], r_error: float
) -> List[ReportCluster]:
    """Group report locations into event clusters of radius ``r_error``.

    Parameters
    ----------
    locations:
        Absolute event locations implied by the reports (the CH resolves
        each node's ``(r, theta)`` offset before calling this).
    r_error:
        The application's localisation error bound.

    Returns
    -------
    list of :class:`ReportCluster`
        Clusters sorted by descending size then ascending first index,
        so the dominant candidate event comes first.
    """
    if r_error <= 0:
        raise ValueError(f"r_error must be positive, got {r_error}")
    n = len(locations)
    if n == 0:
        return []
    if n == 1:
        return [ReportCluster(indices=(0,), center=locations[0])]

    centers = _seed_centers(locations, r_error)
    assignment: List[int] = []
    for _ in range(_MAX_ROUNDS):
        new_assignment = _assign(locations, centers)
        centers = _recenter(locations, new_assignment, len(centers))
        centers, new_assignment = _merge_close_centers(
            locations, centers, r_error
        )
        if new_assignment == assignment:
            break
        assignment = new_assignment

    return _build_clusters(locations, assignment)


def _seed_centers(locations: Sequence[Point], r_error: float) -> List[Point]:
    """Steps 1-3: farthest pair seeds, then greedy coverage seeds."""
    i, j = farthest_pair(locations)
    centers = [locations[i], locations[j]]
    for k, loc in enumerate(locations):
        if k in (i, j):
            continue
        if all(loc.distance_to(c) > r_error for c in centers):
            centers.append(loc)
    return centers


def _assign(locations: Sequence[Point], centers: Sequence[Point]) -> List[int]:
    """Step 4: nearest-centre assignment (ties to the lower centre index)."""
    assignment = []
    for loc in locations:
        best_idx = 0
        best_d = loc.distance_to(centers[0])
        for idx in range(1, len(centers)):
            d = loc.distance_to(centers[idx])
            if d < best_d:
                best_d = d
                best_idx = idx
        assignment.append(best_idx)
    return assignment


def _recenter(
    locations: Sequence[Point], assignment: Sequence[int], k: int
) -> List[Point]:
    """Update each cluster's centre of gravity; empty clusters vanish.

    Returns the new centre list; assignment indices are remapped by the
    caller via :func:`_merge_close_centers`'s reassignment round, so here
    empty clusters simply keep their old slot out of the output and the
    subsequent assign round renumbers implicitly.
    """
    members: List[List[Point]] = [[] for _ in range(k)]
    for loc, cluster_idx in zip(locations, assignment):
        members[cluster_idx].append(loc)
    return [centroid(group) for group in members if group]


def _merge_close_centers(
    locations: Sequence[Point],
    centers: List[Point],
    r_error: float,
) -> Tuple[List[Point], List[int]]:
    """Step 5: merge centres within ``r_error`` at their weighted average.

    An assignment round is run against the incoming centres first so the
    member counts used as merge weights are aligned with the (possibly
    just recentred) centre list.
    """
    assignment = _assign(locations, centers)
    counts = [0] * len(centers)
    for cluster_idx in assignment:
        counts[cluster_idx] += 1

    merged = True
    while merged and len(centers) > 1:
        merged = False
        for a in range(len(centers)):
            for b in range(a + 1, len(centers)):
                if centers[a].distance_to(centers[b]) <= r_error:
                    weight_a = max(counts[a], 1)
                    weight_b = max(counts[b], 1)
                    new_center = weighted_centroid(
                        [centers[a], centers[b]], [weight_a, weight_b]
                    )
                    centers = [
                        c for idx, c in enumerate(centers) if idx not in (a, b)
                    ] + [new_center]
                    counts = [
                        n for idx, n in enumerate(counts) if idx not in (a, b)
                    ] + [weight_a + weight_b]
                    merged = True
                    break
            if merged:
                break

    assignment = _assign(locations, centers)
    return centers, assignment


def _build_clusters(
    locations: Sequence[Point], assignment: Sequence[int]
) -> List[ReportCluster]:
    groups: dict[int, List[int]] = {}
    for report_idx, cluster_idx in enumerate(assignment):
        groups.setdefault(cluster_idx, []).append(report_idx)
    clusters = []
    for indices in groups.values():
        pts = [locations[i] for i in indices]
        clusters.append(
            ReportCluster(indices=tuple(indices), center=centroid(pts))
        )
    clusters.sort(key=lambda c: (-len(c.indices), c.indices[0]))
    return clusters
