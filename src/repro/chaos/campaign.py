"""Campaign runner: a ``plan x seed`` grid of chaos-injected runs.

A campaign fans a set of :class:`~repro.chaos.plan.FaultPlan` timelines
across a seed grid, runs every ``(plan, seed)`` cell as an independent
simulation over the existing sweep worker pool, checks the runtime
invariants on each completed run, and collects one
:class:`CampaignResult` per cell -- including the run's replay
fingerprint, so two executions of the same campaign (any worker count)
can be compared byte for byte.

Exposed on the CLI as ``tibfit-repro chaos``; see ``docs/chaos.md``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.invariants import InvariantChecker, run_fingerprint
from repro.chaos.plan import FaultPlan, builtin_plans
from repro.experiments.harness import SimulationRun
from repro.experiments.runner import ProgressFn, SweepTask, run_sweep
from repro.obs.export import build_manifest, write_json, write_jsonl


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of every run in a campaign (one cell = one simulation).

    Attributes
    ----------
    mode / n_nodes / field_side / sensing_radius:
        Passed straight to :class:`SimulationRun`.  The binary default
        uses a field-covering radius so every node neighbours every
        event (Experiment 1's setup).
    n_rounds:
        Event rounds per run; the plan horizon is
        ``(n_rounds + 1) * round_interval``.
    fault_fraction:
        Fraction of nodes made faulty from the start (ids ``0..k-1``).
    diagnosis_threshold:
        Enables CH-side isolation when set.
    base_seed:
        Offset added to every cell seed, so whole campaigns can be
        re-seeded without renaming their plans.
    """

    mode: str = "binary"
    n_nodes: int = 10
    n_rounds: int = 20
    field_side: float = 100.0
    sensing_radius: float = 150.0
    round_interval: float = 10.0
    t_out: float = 1.0
    fault_fraction: float = 0.2
    diagnosis_threshold: Optional[float] = None
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ValueError("fault_fraction must be in [0, 1]")

    @property
    def horizon(self) -> float:
        """Plan-design horizon: past the last round's quiet window."""
        return (self.n_rounds + 1) * self.round_interval

    def faulty_ids(self) -> Tuple[int, ...]:
        return tuple(range(int(self.fault_fraction * self.n_nodes)))


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one ``(plan, seed)`` campaign cell."""

    plan: str
    seed: int
    fingerprint: str
    accuracy: float
    false_positive_rate: float
    decisions: int
    events: int
    dropped: int
    diagnosed: Tuple[int, ...]
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every runtime invariant held."""
        return not self.violations

    def to_record(self) -> Dict[str, object]:
        record = asdict(self)
        record["diagnosed"] = list(self.diagnosed)
        record["violations"] = list(self.violations)
        record["ok"] = self.ok
        return record


def build_campaign_run(
    config: CampaignConfig, plan: FaultPlan, seed: int
) -> SimulationRun:
    """One un-run simulation for a campaign cell (also the replay hook)."""
    return SimulationRun(
        mode=config.mode,
        n_nodes=config.n_nodes,
        field_side=config.field_side,
        sensing_radius=config.sensing_radius,
        faulty_ids=config.faulty_ids(),
        t_out=config.t_out,
        round_interval=config.round_interval,
        diagnosis_threshold=config.diagnosis_threshold,
        seed=config.base_seed + seed,
        tracing=False,
        chaos_plan=plan,
    )


def run_campaign_point(
    config: CampaignConfig, plan: FaultPlan, seed: int
) -> CampaignResult:
    """Run one cell, check invariants, and summarise.

    Module-level and pure in its arguments, so it pickles across the
    sweep pool boundary and its result is independent of where it runs.
    """
    run = build_campaign_run(config, plan, seed)
    run.run(config.n_rounds)
    violations = InvariantChecker().check_run(run)
    metrics = run.metrics()
    assert run.channel is not None
    return CampaignResult(
        plan=plan.name,
        seed=seed,
        fingerprint=run_fingerprint(run),
        accuracy=metrics.accuracy,
        false_positive_rate=metrics.false_positive_rate,
        decisions=metrics.decisions_total,
        events=len(run.events),
        dropped=run.channel.dropped,
        diagnosed=metrics.diagnosed_nodes,
        violations=tuple(str(v) for v in violations),
    )


def resolve_plans(
    names: Sequence[str], config: CampaignConfig
) -> List[FaultPlan]:
    """Map CLI plan selectors to plans.

    Each selector is a builtin name (see
    :func:`~repro.chaos.plan.builtin_plans`), a path to a plan JSON
    file, or ``random:<seed>`` for a seeded arbitrary plan.
    """
    builtins = builtin_plans(config.horizon, config.n_nodes)
    plans: List[FaultPlan] = []
    for name in names:
        if name in builtins:
            plans.append(builtins[name])
        elif name.startswith("random:"):
            plans.append(
                FaultPlan.random(
                    seed=int(name.split(":", 1)[1]),
                    n_nodes=config.n_nodes,
                    horizon=config.horizon,
                )
            )
        elif Path(name).exists():
            plans.append(FaultPlan.load(name))
        else:
            raise ValueError(
                f"unknown plan {name!r}: not a builtin "
                f"({', '.join(sorted(builtins))}), not 'random:<seed>', "
                "and no such file"
            )
    return plans


def run_campaign(
    plans: Sequence[FaultPlan],
    seeds: Sequence[int],
    config: Optional[CampaignConfig] = None,
    *,
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[CampaignResult]:
    """Run the full ``plan x seed`` grid, in grid order.

    Results come back in ``(plan, seed)`` iteration order regardless of
    worker count -- the same bit-identity contract as
    :func:`~repro.experiments.runner.run_sweep`.
    """
    if config is None:
        config = CampaignConfig()
    tasks = [
        SweepTask(
            fn=run_campaign_point,
            args=(config, plan, seed),
            point=float(plan_index),
            trial=seed,
        )
        for plan_index, plan in enumerate(plans)
        for seed in seeds
    ]
    return run_sweep(tasks, workers=workers, progress=progress)


def summarise(results: Sequence[CampaignResult]) -> str:
    """A fixed-width console table, one line per campaign cell."""
    lines = [
        f"{'plan':<14} {'seed':>4} {'acc':>6} {'fpr':>6} "
        f"{'dec':>4} {'drop':>5} {'inv':>4}  fingerprint",
        "-" * 72,
    ]
    for r in results:
        lines.append(
            f"{r.plan:<14} {r.seed:>4} {r.accuracy:>6.3f} "
            f"{r.false_positive_rate:>6.3f} {r.decisions:>4} "
            f"{r.dropped:>5} {'ok' if r.ok else 'FAIL':>4}  "
            f"{r.fingerprint[:16]}"
        )
    bad = sum(1 for r in results if not r.ok)
    lines.append("-" * 72)
    lines.append(
        f"{len(results)} cells, {bad} with invariant violations"
    )
    return "\n".join(lines)


def export_campaign(
    results: Sequence[CampaignResult],
    plans: Sequence[FaultPlan],
    config: CampaignConfig,
    out_dir,
) -> Dict[str, Path]:
    """Write ``manifest.json``, ``results.jsonl`` and the plan files."""
    out = Path(out_dir)
    manifest = build_manifest(
        kind="chaos-campaign",
        config=asdict(config),
        seed=config.base_seed,
        timings={},
        counts={
            "cells": len(results),
            "plans": len(plans),
            "violations": sum(len(r.violations) for r in results),
        },
    )
    paths = {
        "manifest": write_json(out / "manifest.json", manifest),
        "results": write_jsonl(
            out / "results.jsonl", [r.to_record() for r in results]
        ),
    }
    for plan in plans:
        paths[f"plan:{plan.name}"] = plan.save(
            out / "plans" / f"{plan.name}.json"
        )
    return paths
