"""Unit tests for target trajectories and the tracker."""

import pytest

from repro.network.geometry import Point
from repro.sensors.trajectory import TargetTracker, Trajectory
from repro.simkernel.simulator import Simulator


class TestTrajectory:
    def test_endpoints_and_duration(self):
        traj = Trajectory(
            [Point(0.0, 0.0), Point(30.0, 40.0)], speed=10.0
        )
        assert traj.position_at(0.0) == Point(0.0, 0.0)
        assert traj.position_at(traj.end_time) == Point(30.0, 40.0)
        assert traj.duration == pytest.approx(5.0)  # 50 units at 10/s

    def test_midpoint_interpolation(self):
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0)
        mid = traj.position_at(5.0)
        assert mid.x == pytest.approx(5.0)
        assert mid.y == pytest.approx(0.0)

    def test_multi_leg_path(self):
        traj = Trajectory(
            [Point(0.0, 0.0), Point(10.0, 0.0), Point(10.0, 10.0)],
            speed=1.0,
        )
        assert traj.duration == pytest.approx(20.0)
        corner = traj.position_at(10.0)
        assert corner.x == pytest.approx(10.0)
        assert corner.y == pytest.approx(0.0)
        later = traj.position_at(15.0)
        assert later.y == pytest.approx(5.0)

    def test_clamping_outside_time_range(self):
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0,
                          start_time=5.0)
        assert traj.position_at(0.0) == Point(0.0, 0.0)
        assert traj.position_at(100.0) == Point(10.0, 0.0)

    def test_sampling(self):
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0)
        samples = traj.sample(2.5)
        assert [t for t, _p in samples] == [0.0, 2.5, 5.0, 7.5, 10.0]
        assert samples[2][1].x == pytest.approx(5.0)

    def test_constant_speed_between_samples(self):
        traj = Trajectory(
            [Point(0.0, 0.0), Point(60.0, 80.0)], speed=4.0
        )
        samples = traj.sample(1.0)
        for (t0, p0), (t1, p1) in zip(samples, samples[1:]):
            assert p0.distance_to(p1) == pytest.approx(
                4.0 * (t1 - t0), abs=1e-9
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            Trajectory([Point(0.0, 0.0), Point(1.0, 0.0)], speed=0.0)
        traj = Trajectory([Point(0.0, 0.0), Point(1.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            traj.sample(0.0)


class TestTargetTracker:
    def test_emits_one_event_per_sample(self):
        sim = Simulator(seed=1)
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0)
        seen = []
        tracker = TargetTracker(traj, period=2.0, on_event=seen.append)
        tracker.start(sim)
        sim.run()
        assert len(seen) == 6  # t = 0, 2, ..., 10
        assert [e.time for e in seen] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_event_positions_follow_the_track(self):
        sim = Simulator(seed=1)
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0)
        tracker = TargetTracker(traj, period=5.0, on_event=lambda e: None)
        tracker.start(sim)
        sim.run()
        xs = [e.location.x for e in tracker.emitted]
        assert xs == pytest.approx([0.0, 5.0, 10.0])

    def test_track_error_scoring(self):
        from repro.clusterctl.head import DecisionRecord

        sim = Simulator(seed=1)
        traj = Trajectory([Point(0.0, 0.0), Point(10.0, 0.0)], speed=1.0)
        tracker = TargetTracker(traj, period=5.0, on_event=lambda e: None)
        tracker.start(sim)
        sim.run()
        decisions = [
            DecisionRecord(
                decision_id=1, time=0.5, occurred=True,
                location=Point(1.0, 0.0), supporters=(), dissenters=(),
            ),
            DecisionRecord(
                decision_id=2, time=5.5, occurred=True,
                location=Point(5.5, 0.2), supporters=(), dissenters=(),
            ),
        ]
        located, mean_err = tracker.estimated_track_error(
            decisions, r_error=5.0
        )
        assert located == 2
        assert mean_err == pytest.approx(
            (1.0 + Point(5.5, 0.2).distance_to(Point(5.0, 0.0))) / 2
        )

    def test_invalid_period_rejected(self):
        traj = Trajectory([Point(0.0, 0.0), Point(1.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            TargetTracker(traj, period=0.0, on_event=lambda e: None)
