"""Property-based tests for greedy geographic routing."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.network.geometry import Point, Region
from repro.network.multihop import RoutingTable
from repro.network.topology import Deployment, grid_deployment

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
node_sets = st.lists(
    st.tuples(coords, coords), min_size=2, max_size=20, unique=True
)


def build_table(positions, radio_range):
    deployment = Deployment(region=Region.square(100.0))
    for i, (x, y) in enumerate(positions):
        deployment.add(i, Point(x, y))
    return RoutingTable(deployment, radio_range=radio_range)


@given(positions=node_sets,
       radio_range=st.floats(min_value=5.0, max_value=150.0,
                             allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_routes_are_loop_free_and_bounded(positions, radio_range):
    table = build_table(positions, radio_range)
    n = len(positions)
    for dst in range(min(n, 4)):
        if dst == n - 1:
            continue
        path = table.route(n - 1, dst)
        if path is not None:
            assert len(path) == len(set(path))  # loop-free
            assert path[0] == n - 1
            assert path[-1] == dst


@given(positions=node_sets)
@settings(max_examples=60, deadline=None)
def test_full_range_always_routes_in_one_hop(positions):
    table = build_table(positions, radio_range=150.0)
    path = table.route(0, len(positions) - 1)
    assert path == [0, len(positions) - 1]


@given(side=st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_grid_is_fully_connected_at_adjacent_range(side):
    """A square grid with range just above the cell pitch routes between
    every pair of nodes.  (Non-square node counts produce anisotropic
    cell pitches for which the premise does not hold.)"""
    n = side * side
    deployment = grid_deployment(n, Region.square(100.0))
    ids = deployment.node_ids()
    # Cell pitch: distance between the first two grid nodes.
    if len(ids) < 2:
        return
    pitch = deployment.position_of(ids[0]).distance_to(
        deployment.position_of(ids[1])
    )
    table = RoutingTable(deployment, radio_range=pitch * 1.5)
    assert table.is_connected(ids[0], ids[-1])
    assert table.is_connected(ids[-1], ids[0])


@given(positions=node_sets,
       radio_range=st.floats(min_value=5.0, max_value=60.0,
                             allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_next_hop_is_always_a_neighbor(positions, radio_range):
    table = build_table(positions, radio_range)
    n = len(positions)
    for src in range(min(n, 3)):
        nxt = table.next_hop(src, n - 1)
        if nxt is not None and nxt != n - 1:
            assert nxt in table.neighbors(src)


@given(positions=node_sets)
@settings(max_examples=40, deadline=None)
def test_route_to_self_is_trivial(positions):
    table = build_table(positions, radio_range=30.0)
    assert table.next_hop(0, 0) == 0
