"""Mean-field reliability predictor for TIBFIT binary detection.

§7 lists as future work "a more extensive theoretical model to
demonstrate correctness and predict system reliability under given
constraints".  This module supplies such a model for the binary-event
setting: a deterministic mean-field recursion over the two
populations' expected trust accumulators.

Model
-----
``N`` event neighbours, ``m`` faulty.  Per event, a correct node
reports with probability ``p = 1 - NER`` and a faulty node with
probability ``q`` (``1 -`` its missed-alarm rate).  All correct nodes
share one expected accumulator ``v_c`` and all faulty nodes share
``v_f`` (the mean-field approximation); the corresponding weights are
``TI_c = e^{-lam v_c}``, ``TI_f = e^{-lam v_f}``.

Round success is the exact two-binomial tail of the weighted vote:
with ``X ~ Bin(N-m, p)`` correct reporters and ``Y ~ Bin(m, q)`` faulty
reporters, the event is upheld when

    (2X - (N-m)) * TI_c + (2Y - m) * TI_f > 0

(a strict majority of cumulative trust, ties failing, matching the
voting engine).  Trust then moves in expectation: a node on the winning
side is rewarded, on the losing side penalised, so

    E[dv_c] = P_s * (p*(-f_r) + (1-p)*(1-f_r))
            + (1-P_s) * (p*(1-f_r) + (1-p)*(-f_r))

and symmetrically for ``v_f`` with ``q``; both floored at zero.

The recursion captures the paper's qualitative dynamics exactly: a
fresh majority-compromised system fails immediately, while a system
that accumulates state before (or while) being compromised separates
``TI_f`` from ``TI_c`` and recovers per-round accuracy even past a 50%
compromise.  Against the event-driven simulation it typically tracks
run-average accuracy to within a few points (see the predictor bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.trust import TrustParameters


@dataclass(frozen=True)
class PredictorState:
    """One step of the mean-field recursion."""

    round_index: int
    v_correct: float
    v_faulty: float
    ti_correct: float
    ti_faulty: float
    p_success: float


def _binomial_pmf(n: int, k: int, p: float) -> float:
    if k < 0 or k > n:
        return 0.0
    return math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k))


def weighted_vote_success(
    n_correct: int,
    n_faulty: int,
    p_report_correct: float,
    q_report_faulty: float,
    ti_correct: float,
    ti_faulty: float,
) -> float:
    """Exact P(CTI of reporters > CTI of silent) for the two-weight vote.

    Enumerates the joint (X, Y) reporter counts -- O(N^2) terms, exact
    to float precision.  A tie (equal CTIs) fails, matching the voting
    engine's strict-majority convention.
    """
    if n_correct < 0 or n_faulty < 0:
        raise ValueError("population sizes must be non-negative")
    total = 0.0
    for x in range(n_correct + 1):
        px = _binomial_pmf(n_correct, x, p_report_correct)
        if px == 0.0:
            continue
        margin_c = (2 * x - n_correct) * ti_correct
        for y in range(n_faulty + 1):
            margin = margin_c + (2 * y - n_faulty) * ti_faulty
            if margin > 0:
                total += px * _binomial_pmf(n_faulty, y, q_report_faulty)
    return min(1.0, total)


def _expected_dv(p_report: float, p_success: float,
                 params: TrustParameters) -> float:
    """E[dv] for a population reporting with probability ``p_report``."""
    reward = -params.reward_step
    penalty = params.penalty_step
    win = p_report * reward + (1.0 - p_report) * penalty
    lose = p_report * penalty + (1.0 - p_report) * reward
    return p_success * win + (1.0 - p_success) * lose


def predict_binary_reliability(
    n_neighbors: int,
    n_faulty: int,
    ner: float,
    faulty_miss_rate: float,
    params: TrustParameters,
    rounds: int,
    v_correct0: float = 0.0,
    v_faulty0: float = 0.0,
) -> List[PredictorState]:
    """Run the mean-field recursion for ``rounds`` events.

    Parameters
    ----------
    n_neighbors / n_faulty:
        Population sizes (``n_faulty <= n_neighbors``).
    ner:
        Correct nodes' natural (missed-alarm) error rate.
    faulty_miss_rate:
        Faulty nodes' missed-alarm probability (level-0 style).
    params:
        The trust model.
    rounds:
        Events to predict.
    v_correct0 / v_faulty0:
        Initial accumulators (nonzero models pre-existing state, e.g.
        nodes compromised after a clean warm-up).

    Returns
    -------
    One :class:`PredictorState` per round, with ``p_success`` the
    predicted probability that round's event is detected.
    """
    if not 0 <= n_faulty <= n_neighbors:
        raise ValueError(
            f"need 0 <= n_faulty <= {n_neighbors}, got {n_faulty}"
        )
    if not 0.0 <= ner < 1.0:
        raise ValueError(f"ner must be in [0, 1), got {ner}")
    if not 0.0 <= faulty_miss_rate <= 1.0:
        raise ValueError("faulty_miss_rate must be in [0, 1]")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")

    n_correct = n_neighbors - n_faulty
    p = 1.0 - ner
    q = 1.0 - faulty_miss_rate
    v_c, v_f = float(v_correct0), float(v_faulty0)
    history: List[PredictorState] = []
    for r in range(rounds):
        ti_c = params.ti_of(v_c)
        ti_f = params.ti_of(v_f)
        p_success = weighted_vote_success(n_correct, n_faulty, p, q,
                                          ti_c, ti_f)
        history.append(
            PredictorState(
                round_index=r,
                v_correct=v_c,
                v_faulty=v_f,
                ti_correct=ti_c,
                ti_faulty=ti_f,
                p_success=p_success,
            )
        )
        if n_correct:
            v_c = max(0.0, v_c + _expected_dv(p, p_success, params))
        if n_faulty:
            v_f = max(0.0, v_f + _expected_dv(q, p_success, params))
    return history


def predicted_run_accuracy(
    n_neighbors: int,
    n_faulty: int,
    ner: float,
    faulty_miss_rate: float,
    params: TrustParameters,
    rounds: int,
    **kwargs,
) -> float:
    """Mean predicted per-round success over a run (the paper's metric)."""
    history = predict_binary_reliability(
        n_neighbors, n_faulty, ner, faulty_miss_rate, params, rounds,
        **kwargs,
    )
    return sum(s.p_success for s in history) / len(history)


def predict_decay_tolerance(
    n_neighbors: int,
    ner: float,
    faulty_miss_rate: float,
    params: TrustParameters,
    events_per_compromise: int,
    max_compromised: Optional[int] = None,
) -> List[PredictorState]:
    """Predict reliability while nodes fall one-by-one (§5's scenario).

    Starting fully correct, one node moves to the faulty side every
    ``events_per_compromise`` rounds until ``max_compromised`` (default
    ``N - 2``).  The defector carries the *correct* population's
    accumulated ``v`` with it -- it was an honest node until captured --
    and the faulty mean updates as a size-weighted mixture.
    """
    if events_per_compromise <= 0:
        raise ValueError("events_per_compromise must be positive")
    if max_compromised is None:
        max_compromised = n_neighbors - 2
    if not 0 <= max_compromised < n_neighbors:
        raise ValueError("max_compromised must be in [0, N)")

    p = 1.0 - ner
    q = 1.0 - faulty_miss_rate
    v_c, v_f = 0.0, 0.0
    m = 0
    history: List[PredictorState] = []
    total_rounds = events_per_compromise * (max_compromised + 1)
    for r in range(total_rounds):
        if r % events_per_compromise == 0 and m < max_compromised:
            # A correct node defects, bringing its v along.
            if m == 0:
                v_f = v_c
            else:
                v_f = (m * v_f + v_c) / (m + 1)
            m += 1
        n_correct = n_neighbors - m
        ti_c = params.ti_of(v_c)
        ti_f = params.ti_of(v_f)
        p_success = weighted_vote_success(n_correct, m, p, q, ti_c, ti_f)
        history.append(
            PredictorState(r, v_c, v_f, ti_c, ti_f, p_success)
        )
        v_c = max(0.0, v_c + _expected_dv(p, p_success, params))
        if m:
            v_f = max(0.0, v_f + _expected_dv(q, p_success, params))
    return history
