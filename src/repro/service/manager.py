"""Multi-tenant session registry: many trust sessions, one process.

:class:`SessionManager` holds tens of thousands of independent
:class:`~repro.service.session.TrustSession` objects keyed by a
tenant/cluster id string.  It provides the three things the HTTP layer
(and any embedding server) needs:

* **lazy creation** -- unknown keys are built by the injected factory
  on first touch;
* **bounded residency** -- a max-session cap with LRU eviction of idle
  sessions (an ``OrderedDict`` move-to-end on every touch *is* the LRU
  order, so eviction is O(1) and needs no clock);
* **safe concurrency** -- one :class:`threading.Lock` per session plus
  a registry lock, so ingests for different tenants run in parallel
  while a single session's window state is never raced.

Evicted sessions can be persisted through the ``on_evict`` hook (their
``export_state()`` round-trips through JSON; see ``docs/service.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.service.session import TrustSession

__all__ = ["SessionManager", "SessionSlot"]


class SessionSlot:
    """One managed session plus its ingest lock."""

    __slots__ = ("key", "session", "lock")

    def __init__(self, key: str, session: TrustSession) -> None:
        self.key = key
        self.session = session
        self.lock = threading.Lock()


class SessionManager:
    """A capped, LRU-evicting registry of trust sessions.

    Parameters
    ----------
    factory:
        ``factory(key) -> TrustSession`` builder for unknown keys.
    max_sessions:
        Residency cap; reaching it evicts the least-recently-used idle
        session.  ``0`` means unbounded.
    on_evict:
        Optional hook ``on_evict(key, session)`` called (outside the
        registry lock) for every evicted session -- the place to
        persist ``session.export_state()``.
    """

    def __init__(
        self,
        factory: Callable[[str], TrustSession],
        max_sessions: int = 0,
        on_evict: Optional[Callable[[str, TrustSession], None]] = None,
    ) -> None:
        if max_sessions < 0:
            raise ValueError(
                f"max_sessions must be non-negative, got {max_sessions}"
            )
        self._factory = factory
        self.max_sessions = max_sessions
        self._on_evict = on_evict
        self._slots: "OrderedDict[str, SessionSlot]" = OrderedDict()
        self._lock = threading.Lock()
        self.created = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # Lookup / creation
    # ------------------------------------------------------------------
    def _get_slot(self, key: str) -> Optional[SessionSlot]:
        """The slot for ``key`` if resident (touches LRU order)."""
        with self._lock:
            slot = self._slots.get(key)
            if slot is not None:
                self._slots.move_to_end(key)
            return slot

    def _get_or_create_slot(self, key: str) -> SessionSlot:
        """The slot for ``key``, building (and possibly evicting) as needed."""
        evictions: List[Tuple[str, TrustSession]] = []
        with self._lock:
            slot = self._slots.get(key)
            if slot is not None:
                self._slots.move_to_end(key)
                return slot
            if self.max_sessions and len(self._slots) >= self.max_sessions:
                evictions = self._evict_lru_locked(
                    len(self._slots) - self.max_sessions + 1
                )
            slot = SessionSlot(key, self._factory(key))
            self._slots[key] = slot
            self.created += 1
        for evicted_key, session in evictions:
            if self._on_evict is not None:
                self._on_evict(evicted_key, session)
        return slot

    def get(self, key: str) -> Optional[TrustSession]:
        """The session for ``key`` if resident (touches LRU order)."""
        slot = self._get_slot(key)
        return None if slot is None else slot.session

    def get_or_create(self, key: str) -> TrustSession:
        """The session for ``key``, building (and possibly evicting) one."""
        return self._get_or_create_slot(key).session

    @contextmanager
    def locked(self, key: str, create: bool = True) -> Iterator[TrustSession]:
        """Context manager: the session for ``key`` under its own lock.

        With ``create=False`` raises :class:`KeyError` for non-resident
        keys instead of building one.
        """
        if create:
            slot = self._get_or_create_slot(key)
        else:
            found = self._get_slot(key)
            if found is None:
                raise KeyError(key)
            slot = found
        with slot.lock:
            yield slot.session

    # ------------------------------------------------------------------
    # Eviction / removal
    # ------------------------------------------------------------------
    def _evict_lru_locked(self, count: int) -> List[Tuple[str, TrustSession]]:
        """Drop up to ``count`` idle sessions, oldest-touched first.

        Sessions whose lock is currently held (mid-ingest on another
        thread) are skipped -- evicting those would hand the worker a
        dangling session.  Caller holds the registry lock.
        """
        evicted: List[Tuple[str, TrustSession]] = []
        for key in list(self._slots):
            if len(evicted) >= count:
                break
            slot = self._slots[key]
            if slot.lock.locked():
                continue
            del self._slots[key]
            evicted.append((key, slot.session))
        self.evicted += len(evicted)
        return evicted

    def remove(self, key: str) -> bool:
        """Drop ``key`` outright (no ``on_evict`` call); True if present."""
        with self._lock:
            return self._slots.pop(key, None) is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._slots

    def keys(self) -> List[str]:
        """Resident session keys, least-recently-used first."""
        with self._lock:
            return list(self._slots)

    def stats(self) -> Dict[str, int]:
        """Registry counters for health endpoints and benchmarks."""
        with self._lock:
            return {
                "sessions": len(self._slots),
                "max_sessions": self.max_sessions,
                "created": self.created,
                "evicted": self.evicted,
            }
