"""Node deployment and neighbourhood queries.

The paper deploys nodes two ways: Experiment 1 uses a small cluster where
every node neighbours every event; Experiment 2 places "100 nodes ...
uniformly on a 100x100 grid" (§4.2).  This module provides both
deployments plus the event-neighbour query (§2: nodes within detection
range ``r_s`` of an event are its *event neighbours*).

Neighbourhood queries are backed by a lazily built grid-bucket spatial
index (:class:`_SpatialGrid`): node ids and coordinates are cached as
flat numpy arrays, bucketed into square cells of roughly the sensing
radius, and a disk query touches only the cells its bounding box
overlaps.  The cache is invalidated whenever the deployment mutates
(:meth:`Deployment.add` / :meth:`Deployment.remove` /
:meth:`Deployment.move`), so faulty-node isolation and mobility stay
correct; code that mutates ``positions`` directly must call
:meth:`Deployment.invalidate_index`.  Every query is bit-identical to
the scalar ``distance_to`` scan -- the same correctly-rounded
``sqrt(dx*dx + dy*dy)`` expression decides membership, and tie order in
:meth:`Deployment.nearest` is ``(distance, id)`` in both paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.geometry import Point, Region

#: Node-count crossover below which queries use the plain dict scan --
#: numpy array construction and ufunc dispatch cost more than the loop.
#: Measured on this container the paths break even at ~64 nodes.
_INDEX_MIN_NODES = 64


class _SpatialGrid:
    """Immutable grid-bucket snapshot of a deployment's positions.

    ``ids`` is sorted ascending with ``xs`` / ``ys`` aligned, so a
    boolean mask over the full arrays yields ids already in sorted
    order.  ``buckets`` maps integer cell coordinates (``floor(x /
    cell)``, ``floor(y / cell)``) to index arrays into those flat
    arrays.
    """

    __slots__ = ("cell", "ids", "xs", "ys", "buckets")

    def __init__(self, positions: Dict[int, Point], cell: float) -> None:
        if cell <= 0:
            raise ValueError(f"cell size must be positive, got {cell}")
        self.cell = cell
        ids = sorted(positions)
        self.ids = np.array(ids, dtype=np.int64)
        self.xs = np.array([positions[i].x for i in ids], dtype=np.float64)
        self.ys = np.array([positions[i].y for i in ids], dtype=np.float64)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for idx, node_id in enumerate(ids):
            p = positions[node_id]
            key = (math.floor(p.x / cell), math.floor(p.y / cell))
            buckets.setdefault(key, []).append(idx)
        self.buckets = {
            key: np.array(members, dtype=np.intp)
            for key, members in buckets.items()
        }

    def disk_candidates(
        self, x: float, y: float, radius: float
    ) -> Optional[np.ndarray]:
        """Index array of nodes in cells overlapping the disk's bbox.

        Returns ``None`` when the bbox covers at least as many cells as
        exist -- the caller should scan the full arrays directly (same
        work, no gather overhead).
        """
        cell = self.cell
        gx0 = math.floor((x - radius) / cell)
        gx1 = math.floor((x + radius) / cell)
        gy0 = math.floor((y - radius) / cell)
        gy1 = math.floor((y + radius) / cell)
        if (gx1 - gx0 + 1) * (gy1 - gy0 + 1) >= len(self.buckets):
            return None
        chunks = []
        for gx in range(gx0, gx1 + 1):
            for gy in range(gy0, gy1 + 1):
                members = self.buckets.get((gx, gy))
                if members is not None:
                    chunks.append(members)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)


@dataclass
class Deployment:
    """A set of node positions inside a region.

    Attributes
    ----------
    region:
        The deployment field.
    positions:
        Mapping of node id to position.  Ids are dense from 0 unless the
        deployment was built by hand.
    """

    region: Region
    positions: Dict[int, Point] = field(default_factory=dict)
    _grid: Optional[_SpatialGrid] = field(
        default=None, init=False, repr=False, compare=False
    )
    _preferred_cell: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.positions

    def node_ids(self) -> Tuple[int, ...]:
        """All node ids, sorted."""
        return tuple(sorted(self.positions))

    def position_of(self, node_id: int) -> Point:
        """Position of ``node_id``; raises ``KeyError`` if unknown."""
        return self.positions[node_id]

    def add(self, node_id: int, position: Point) -> None:
        """Place a node, validating the position is inside the region."""
        if node_id in self.positions:
            raise ValueError(f"node {node_id} already deployed")
        if not self.region.contains(position):
            raise ValueError(
                f"position {position} outside region {self.region}"
            )
        self.positions[node_id] = position
        self._grid = None

    def remove(self, node_id: int) -> None:
        """Remove a node from the deployment (isolation of faulty nodes).

        Raises ``KeyError`` for an unknown id: isolation acting on a
        node that is not deployed indicates a bookkeeping bug upstream
        and must not pass silently.
        """
        if node_id not in self.positions:
            raise KeyError(node_id)
        del self.positions[node_id]
        self._grid = None

    def move(self, node_id: int, position: Point) -> None:
        """Update an existing node's position (mobility fast path).

        Unlike :meth:`add` this does not validate region membership:
        mobility interpolates between in-region waypoints, so staying
        inside the (convex) region is the caller's invariant.  Raises
        ``KeyError`` for an unknown id.
        """
        if node_id not in self.positions:
            raise KeyError(node_id)
        self.positions[node_id] = position
        self._grid = None

    def invalidate_index(self) -> None:
        """Drop the cached spatial index.

        Must be called by any code that mutates ``positions`` directly
        instead of going through :meth:`add` / :meth:`remove` /
        :meth:`move`.
        """
        self._grid = None

    def ensure_index(self, cell_size: float) -> None:
        """Pre-build the grid index with the given cell size.

        Cluster heads call this with their sensing radius ``r_s`` --
        the cell size that makes an event-neighbour disk query touch a
        handful of cells.  The index is still built lazily on first
        query if this is never called.
        """
        if cell_size <= 0:
            raise ValueError(
                f"cell_size must be positive, got {cell_size}"
            )
        self._preferred_cell = cell_size
        if self._grid is None or self._grid.cell != cell_size:
            self._grid = _SpatialGrid(self.positions, cell_size)

    def _index(self, default_cell: float) -> _SpatialGrid:
        """The current grid, built on demand after any invalidation."""
        if self._grid is None:
            cell = self._preferred_cell
            if cell is None or cell <= 0:
                cell = default_cell
            self._grid = _SpatialGrid(self.positions, cell)
        return self._grid

    def _fallback_cell(self) -> float:
        """Cell size used when no radius hint is available."""
        extent = max(self.region.width, self.region.height)
        return extent / 8.0 if extent > 0 else 1.0

    def event_neighbors(
        self, event_location: Point, sensing_radius: float
    ) -> List[int]:
        """Ids of nodes within ``sensing_radius`` of ``event_location``.

        These are the nodes expected to report the event (§2, figure 1).
        """
        if sensing_radius < 0:
            raise ValueError("sensing_radius must be non-negative")
        if len(self.positions) < _INDEX_MIN_NODES:
            return self._event_neighbors_scalar(
                event_location, sensing_radius
            )
        return self._event_neighbors_indexed(event_location, sensing_radius)

    def _event_neighbors_scalar(
        self, event_location: Point, sensing_radius: float
    ) -> List[int]:
        """Retained reference scan (also the small-n fast path)."""
        return sorted(
            node_id
            for node_id, pos in self.positions.items()
            if pos.distance_to(event_location) <= sensing_radius
        )

    def _event_neighbors_indexed(
        self, event_location: Point, sensing_radius: float
    ) -> List[int]:
        """Grid-bucket disk query; bit-identical to the scalar scan."""
        grid = self._index(
            sensing_radius if sensing_radius > 0 else self._fallback_cell()
        )
        x = event_location.x
        y = event_location.y
        candidates = grid.disk_candidates(x, y, sensing_radius)
        if candidates is None:
            xs, ys, ids = grid.xs, grid.ys, grid.ids
        else:
            if not len(candidates):
                return []
            xs = grid.xs[candidates]
            ys = grid.ys[candidates]
            ids = grid.ids[candidates]
        dx = xs - x
        dy = ys - y
        hit = ids[np.sqrt(dx * dx + dy * dy) <= sensing_radius]
        if candidates is None:
            # Full arrays are id-sorted, so the mask preserved order.
            return hit.tolist()
        return sorted(hit.tolist())

    def nearest(self, location: Point, k: int = 1) -> List[int]:
        """The ``k`` node ids nearest to ``location`` (distance, id order)."""
        if k <= 0:
            raise ValueError("k must be positive")
        if len(self.positions) < _INDEX_MIN_NODES:
            return self._nearest_scalar(location, k)
        return self._nearest_indexed(location, k)

    def _nearest_scalar(self, location: Point, k: int) -> List[int]:
        """Retained reference ranking (also the small-n fast path)."""
        ranked = sorted(
            self.positions.items(),
            key=lambda item: (item[1].distance_to(location), item[0]),
        )
        return [node_id for node_id, _pos in ranked[:k]]

    def _nearest_indexed(self, location: Point, k: int) -> List[int]:
        """Ranking over the cached flat arrays.

        ``np.lexsort`` sorts by its last key first, so ``(ids, d)``
        ranks by distance with id as the tie-breaker -- the scalar
        path's ``(distance, id)`` sort key exactly.
        """
        grid = self._index(self._fallback_cell())
        dx = grid.xs - location.x
        dy = grid.ys - location.y
        d = np.sqrt(dx * dx + dy * dy)
        order = np.lexsort((grid.ids, d))
        return grid.ids[order[:k]].tolist()

    def within(self, location: Point, radius: float) -> List[int]:
        """Alias of :meth:`event_neighbors` for general range queries."""
        return self.event_neighbors(location, radius)

    def density(self) -> float:
        """Nodes per unit area."""
        if self.region.area == 0:
            raise ValueError("region has zero area")
        return len(self.positions) / self.region.area


def uniform_random_deployment(
    n_nodes: int,
    region: Region,
    rng: np.random.Generator,
    first_id: int = 0,
) -> Deployment:
    """Scatter ``n_nodes`` uniformly at random over ``region``.

    This matches the paper's §2 deployment assumption ("placing the nodes
    randomly in the network"); ids are assigned densely from ``first_id``.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    deployment = Deployment(region=region)
    xs = rng.uniform(region.x_min, region.x_max, size=n_nodes)
    ys = rng.uniform(region.y_min, region.y_max, size=n_nodes)
    for i in range(n_nodes):
        deployment.add(first_id + i, Point(float(xs[i]), float(ys[i])))
    return deployment


def grid_deployment(
    n_nodes: int,
    region: Region,
    first_id: int = 0,
) -> Deployment:
    """Place ``n_nodes`` on a regular grid filling ``region``.

    Experiment 2's "100 nodes placed uniformly on a 100x100 grid" uses a
    10x10 arrangement with cell-centred positions.  For non-square counts
    the grid is the smallest ``rows x cols`` covering ``n_nodes`` with
    ``cols = ceil(sqrt(n))``; trailing cells are left empty.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    deployment = Deployment(region=region)
    if n_nodes == 0:
        return deployment
    cols = math.ceil(math.sqrt(n_nodes))
    rows = math.ceil(n_nodes / cols)
    cell_w = region.width / cols
    cell_h = region.height / rows
    placed = 0
    for r in range(rows):
        for c in range(cols):
            if placed >= n_nodes:
                break
            x = region.x_min + (c + 0.5) * cell_w
            y = region.y_min + (r + 0.5) * cell_h
            deployment.add(first_id + placed, Point(x, y))
            placed += 1
    return deployment


#: Per-process memo behind :func:`shared_grid_deployment`: deployment
#: key -> (template positions, {cell size -> prebuilt _SpatialGrid}).
#: Bounded so a pathological sweep over many geometries cannot grow it
#: without limit; eviction is wholesale (the memo is a pure cache).
_SHARED_GRID_MEMO: Dict[
    Tuple[int, int, float, float, float, float],
    Tuple[Dict[int, Point], Dict[float, _SpatialGrid]],
] = {}
_SHARED_GRID_MEMO_MAX = 32


def shared_grid_deployment(
    n_nodes: int,
    region: Region,
    first_id: int = 0,
    index_cell: Optional[float] = None,
) -> Deployment:
    """A :func:`grid_deployment` served from a per-process memo.

    Grid placement is a pure function of ``(n_nodes, region bounds,
    first_id)`` -- no RNG -- so all trials of one sweep point can share
    the precomputed geometry: the returned :class:`Deployment` gets a
    *copy* of the memoised positions dict (:class:`Point` values are
    immutable and shared) and, when ``index_cell`` is given, a reference
    to the shared prebuilt :class:`_SpatialGrid` snapshot for that cell
    size.  Snapshots are immutable and mutation invalidates by replacing
    the reference (``add``/``remove``/``move`` set ``_grid = None``), so
    one trial mutating its deployment never perturbs another.  Results
    are bit-identical to building from scratch; only the wall time
    changes.
    """
    key = (
        n_nodes,
        first_id,
        region.x_min,
        region.x_max,
        region.y_min,
        region.y_max,
    )
    entry = _SHARED_GRID_MEMO.get(key)
    if entry is None:
        if len(_SHARED_GRID_MEMO) >= _SHARED_GRID_MEMO_MAX:
            _SHARED_GRID_MEMO.clear()
        template = grid_deployment(n_nodes, region, first_id)
        entry = (template.positions, {})
        _SHARED_GRID_MEMO[key] = entry
    positions, grids = entry
    deployment = Deployment(region=region, positions=dict(positions))
    if index_cell is not None and index_cell > 0 and n_nodes > 0:
        grid = grids.get(index_cell)
        if grid is None:
            grid = _SpatialGrid(positions, index_cell)
            grids[index_cell] = grid
        deployment._preferred_cell = index_cell
        deployment._grid = grid
    return deployment


def clustered_deployment(
    cluster_centers: Sequence[Point],
    nodes_per_cluster: int,
    spread: float,
    region: Region,
    rng: np.random.Generator,
    first_id: int = 0,
) -> Deployment:
    """Gaussian blobs of nodes around given centres, clamped to the region.

    Not used by the headline experiments but exercised by the multi-cluster
    LEACH integration tests and the cluster-head failover example.
    """
    if nodes_per_cluster < 0:
        raise ValueError("nodes_per_cluster must be non-negative")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    deployment = Deployment(region=region)
    node_id = first_id
    for center in cluster_centers:
        for _ in range(nodes_per_cluster):
            p = Point(
                float(rng.normal(center.x, spread)),
                float(rng.normal(center.y, spread)),
            )
            deployment.add(node_id, region.clamp(p))
            node_id += 1
    return deployment
