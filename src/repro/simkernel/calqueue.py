"""Calendar-queue scheduler backend with a recycled event arena.

This is the fast sibling of :class:`repro.simkernel.events.EventQueue`
(the heapq implementation, retained as the bit-identity oracle).  Both
backends implement the same determinism contract -- events pop in exact
``(time, priority, sequence)`` order, lower priority first, insertion
order breaking ties -- so every experiment produces identical results
under either one.  The differential suites in
``tests/simkernel/test_calqueue_equivalence.py`` replay random
schedule/cancel/timer interleavings against the oracle to pin this.

Structure
---------
*Calendar queue* (Brown 1988): a power-of-two array of buckets, each
holding the events of one ``width``-wide time slice of every "year"
(``nbuckets * width``).  A cursor walks the buckets; an event in the
cursor's bucket is only accepted while its time is below the bucket's
current year threshold (``cur_top``), so far-future events wait for a
later lap.  A full fruitless lap falls back to a vectorised direct
search over the packed key arrays.  The bucket map
``int(time / width)`` is monotone non-decreasing in time, which is the
only property the ordering argument needs -- the scan can therefore
never surface an event before an earlier-keyed one.

*Event arena*: events live in slots of an append-only pool.  A fired
slot is freed one pop later (the loop's reference to the firing event
must die first) and recycled for the next schedule, so the steady path
allocates no objects at all.  Recycling is gated on
``sys.getrefcount``: a handle still held by caller code is never
reused -- it is orphaned with ``_popped`` set, so a late
:meth:`ArenaEvent.cancel` stays the same no-op it is on the heap
backend.  Each slot carries a generation counter (object attribute plus
the ``_gen`` column), bumped when the slot changes tenant or is
re-armed, so stale slot references are detectable.

*Packed keys*: the direct-search fallback and resize gather event
times into a flat float64 vector and reduce it vectorised instead of
comparing event objects.  The ``(priority, sequence)`` tie component
packs into one 64-bit word -- ``(priority + bias) << 44 | sequence``
(:attr:`ArenaEvent.sortkey`) -- computed only when two events actually
collide on time, which bounds priorities to ``[-524288, 524287]``
(the simulation uses -2..0).

*Sorted-burst drain*: simultaneous events (one sensing round informing
``k`` neighbours at a single instant) all land in the same bucket,
because the bucket map is a pure function of the time -- so popping
them one at a time would rescan the bucket with sortkey tie compares
on every pop, O(k^2) total.  When the cursor scan sees a time tie it
extracts the whole same-time cohort, sorts it once by *descending*
sortkey, and serves subsequent pops from the tail of that list until
the burst is dry.  A same-time arrival during the drain bisects into
the burst; an earlier arrival flushes the burst back into its bucket
and takes the normal insert path (which resets the cursor).

*Fused timers*: :meth:`rearm` re-arms a just-fired event in place --
new time, fresh sequence number (preserving tie order against the
oracle's pop+push), same slot and object -- so a periodic
:class:`~repro.simkernel.simulator.Timer` stream costs no allocation
and no heap churn per tick.
"""

from __future__ import annotations

import sys
from bisect import insort
from operator import attrgetter
from typing import Any, Callable, Optional

import numpy as np

from repro.simkernel.errors import SchedulingError, SimulationFinished

__all__ = [
    "ArenaEvent",
    "CalendarQueue",
    "QUEUE_ENV",
    "QUEUE_BACKENDS",
    "resolve_queue_backend",
]

# Environment variable selecting the Simulator's scheduler backend.
QUEUE_ENV = "TIBFIT_QUEUE"
QUEUE_BACKENDS = ("heap", "calendar")
DEFAULT_BACKEND = "calendar"

_MIN_BUCKETS = 8
_MAX_BUCKETS = 32768
_PRIORITY_BIAS = 1 << 19
_SEQ_BITS = 44
# Bucket-index clamp for non-finite / astronomically large times: far
# beyond any reachable cursor position, still a valid Python int.
_FAR_INDEX = 1 << 62
_KEY_DTYPE = np.float64

_SORTKEY = attrgetter("sortkey")


def _neg_sortkey(event: "ArenaEvent") -> int:
    """Bisect key for the descending-sortkey burst list."""
    return -event.sortkey


def resolve_queue_backend(name: Optional[str] = None) -> str:
    """Resolve the scheduler backend: explicit arg, else $TIBFIT_QUEUE.

    Returns ``"heap"`` or ``"calendar"`` (the default).  Raises
    :class:`SchedulingError` on anything else, naming the environment
    variable when the bad value came from the environment.
    """
    import os

    if name is None:
        env = os.environ.get(QUEUE_ENV)
        if env is None or env == "":
            return DEFAULT_BACKEND
        if env not in QUEUE_BACKENDS:
            raise SchedulingError(
                f"{QUEUE_ENV} must be one of {QUEUE_BACKENDS}, got {env!r}"
            )
        return env
    if name not in QUEUE_BACKENDS:
        raise SchedulingError(
            f"queue backend must be one of {QUEUE_BACKENDS}, got {name!r}"
        )
    return name


class ArenaEvent:
    """A slot-resident scheduled event.

    Duck-types :class:`repro.simkernel.events.ScheduledEvent` (same
    public fields, :meth:`cancel`, :meth:`fire`) and adds the arena
    bookkeeping: ``slot`` (pool index), ``generation`` (bumped each
    time the slot is armed for a new tenant or re-armed in place) and
    ``sortkey`` (the packed ``(priority, sequence)`` tie word).
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "args",
        "kwargs",
        "cancelled",
        "label",
        "ctx",
        "slot",
        "generation",
        "_queue",
        "_popped",
    )

    def __init__(self, queue: "CalendarQueue", slot: int) -> None:
        self.time = 0.0
        self.priority = 0
        self.sequence = -1
        self.callback = None
        self.args = ()
        self.kwargs = None
        self.cancelled = False
        self.label = ""
        # Causal-context token (see repro.obs.spans); 0 = no context.
        # Stamped by the simulator front-ends / the after() closure;
        # preserved across rearm() so periodic timers keep the context
        # they were originally scheduled under.
        self.ctx = 0
        self.slot = slot
        self.generation = 0
        self._queue = queue
        self._popped = True  # not armed yet

    @property
    def sortkey(self) -> int:
        """The packed 64-bit ``(priority, sequence)`` tie word."""
        return ((self.priority + _PRIORITY_BIAS) << _SEQ_BITS) | self.sequence

    def cancel(self) -> None:
        """Mark this event so the scan skips it; O(1), no bucket search.

        Cancelling twice, or cancelling after the event fired (or after
        its slot was recycled past this handle -- the handle keeps
        ``_popped`` forever in that case), is a no-op, exactly matching
        the heap backend's late-cancel contract.
        """
        if self.cancelled or self._popped:
            return
        self.cancelled = True
        queue = self._queue
        queue._live -= 1
        queue._dead += 1
        if queue._dead > 64 and queue._dead > queue._live:
            queue._purge()

    def fire(self) -> Any:
        """Invoke the callback with its stored arguments."""
        if self.kwargs is None:
            return self.callback(*self.args)
        return self.callback(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArenaEvent(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, slot={self.slot}, "
            f"generation={self.generation}, label={self.label!r}, "
            f"cancelled={self.cancelled})"
        )


class CalendarQueue:
    """Bucketed calendar queue over a recycled event arena.

    API-compatible with :class:`~repro.simkernel.events.EventQueue`
    (``push``/``pop``/``pop_next``/``peek_time``/``clear``/``len``) and
    extends it with the fast entry points the simulator wires up when
    this backend is selected: :meth:`schedule` (positional, no keyword
    re-marshalling), :meth:`make_after` (a closure fast path installed
    as ``sim.after``), :meth:`run_loop` (the fused pop+fire loop) and
    :meth:`rearm` (in-place periodic-timer re-arm).
    """

    # Slotted: the hot paths (the ``after`` closure, ``run_loop``) read
    # a dozen of these per event; slot descriptors beat dict lookups.
    __slots__ = (
        "_sequence",
        "_live",
        "_dead",
        "_nbuckets",
        "_mask",
        "_width",
        "_inv",
        "_buckets",
        "_cur",
        "_cur_top",
        "_floor",
        "_grow_at",
        "_epoch",
        "_burst",
        "_burst_time",
        "_slot_obj",
        "_free",
        "_pending_free",
        "_gen",
    )

    def __init__(self) -> None:
        self._sequence = 0
        self._live = 0
        self._dead = 0  # cancelled events still parked in buckets
        # Calendar layout.
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._width = 1.0
        self._inv = 1.0
        self._buckets: list = [[] for _ in range(_MIN_BUCKETS)]
        self._cur = 0  # cursor bucket (the one holding _floor)
        self._cur_top = 1.0  # accept threshold for the cursor bucket
        self._floor = 0.0  # no live event is earlier than this
        self._grow_at = 2 * _MIN_BUCKETS
        self._epoch = 0  # bumped on resize/clear so loops reload layout
        # Sorted-burst drain: when the cursor scan hits a time tie the
        # whole same-time cohort moves here, sorted by DESCENDING
        # sortkey so pops come off the tail in oracle order.
        self._burst: list = []
        self._burst_time = 0.0
        # Arena: slot-indexed object pool + free list + packed key columns.
        # The list objects are stable for the queue's lifetime (cleared
        # in place) so closures may capture them.
        self._slot_obj: list = []
        self._free: list = []
        self._pending_free = -1  # slot freed at the *next* removal
        self._gen = np.zeros(64, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *,
        priority: int = 0,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> ArenaEvent:
        """Keyword-compatible twin of :meth:`EventQueue.push`."""
        return self.schedule(
            time, priority, callback, args, kwargs if kwargs else None, label
        )

    def schedule(
        self,
        time: float,
        priority: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: Optional[dict],
        label: str,
    ) -> ArenaEvent:
        """Positional scheduling core: validate, arm a slot, insert."""
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        if time != time:  # NaN check
            raise SchedulingError("cannot schedule an event at time NaN")
        if priority and (
            priority < -_PRIORITY_BIAS or priority >= _PRIORITY_BIAS
        ):
            raise SchedulingError(
                f"calendar backend priorities must be in "
                f"[{-_PRIORITY_BIAS}, {_PRIORITY_BIAS - 1}], got {priority}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = self._arm(
            time, priority, sequence, callback, args, kwargs, label
        )
        self._insert(event, time)
        return event

    def _arm(
        self, time, priority, sequence, callback, args, kwargs, label
    ) -> ArenaEvent:
        """Take a slot (recycled when safe, fresh otherwise) and fill it."""
        free = self._free
        slot_obj = self._slot_obj
        if free:
            slot = free.pop()
            event = slot_obj[slot]
            # Reuse only if nobody else holds the handle: refcount is
            # slot_obj + our local + getrefcount's argument.
            if sys.getrefcount(event) == 3:
                event.generation += 1
                event.time = time
                event.priority = priority
                event.sequence = sequence
                event.callback = callback
                event.args = args
                event.kwargs = kwargs
                event.cancelled = False
                event.label = label
                event.ctx = 0
                event._popped = False
                return event
            # Held externally: orphan the old tenant (its _popped flag
            # keeps late cancels inert forever) and give the slot a
            # fresh object under a bumped generation.
            generation = event.generation + 1
        else:
            slot = len(slot_obj)
            slot_obj.append(None)
            if slot >= len(self._gen):
                self._gen = np.concatenate(
                    [self._gen, np.zeros(len(self._gen), np.int64)]
                )
            generation = 0
        event = ArenaEvent(self, slot)
        event.generation = generation
        event.time = time
        event.priority = priority
        event.sequence = sequence
        event.callback = callback
        event.args = args
        event.kwargs = kwargs
        event._popped = False
        event.label = label
        slot_obj[slot] = event
        self._gen[slot] = generation
        return event

    def _index_of(self, time: float) -> int:
        """Monotone bucket map ``int(time / width)`` with inf clamp."""
        try:
            return int(time * self._inv)
        except OverflowError:
            return _FAR_INDEX if time > 0 else -_FAR_INDEX

    def _insert(self, event: ArenaEvent, time: float) -> None:
        burst = self._burst
        if burst:
            burst_time = self._burst_time
            if time == burst_time:
                # Joins the cohort being drained: bisect into place.
                # The new arrival has the highest sequence so far, so
                # with any in-play priority it sits where the oracle
                # would pop it (priority -2 lands at the tail = next).
                insort(burst, event, key=_neg_sortkey)
                self._live += 1
                return
            if time < burst_time:
                # An earlier arrival ends the drain: park the cohort
                # back in its bucket (index computed under the current
                # layout) and fall through to the normal insert, whose
                # time < _floor branch resets the cursor.
                self._buckets[
                    self._index_of(burst_time) & self._mask
                ].extend(burst)
                del burst[:]
        index = self._index_of(time)
        live = self._live
        if live == 0 or time < self._floor:
            # The event starts (or restarts) the timeline: point the
            # cursor at its bucket so the scan resumes from it.
            self._cur = index & self._mask
            self._cur_top = (index + 1) * self._width
            self._floor = time
        self._buckets[index & self._mask].append(event)
        self._live = live + 1
        if live >= self._grow_at:
            self._resize()

    # ------------------------------------------------------------------
    # Popping
    # ------------------------------------------------------------------
    def _scan_min(self):
        """Locate (not remove) the earliest live event.

        Returns ``(event, bucket, index_in_bucket, cur, top)`` or
        ``None`` when no live events remain.  Commits no cursor state:
        callers that remove the event commit ``cur``/``top``/``floor``
        themselves, so a blocked ``pop_next(until)`` leaves the queue
        untouched.  Callers must drain :attr:`_burst` first (via
        :meth:`_burst_next`): this scan only covers the buckets.
        """
        if self._live == 0:
            return None
        if self._nbuckets > _MIN_BUCKETS and (
            self._live < self._nbuckets >> 2
        ):
            self._resize()
        buckets = self._buckets
        mask = self._mask
        width = self._width
        cur = self._cur
        top = self._cur_top
        for _ in range(mask + 1):
            bucket = buckets[cur]
            if bucket:
                best = None
                best_t = 0.0
                best_i = -1
                if self._dead:
                    # Compact cancelled entries out while scanning.
                    write = 0
                    for event in bucket:
                        if event.cancelled:
                            self._dead -= 1
                            self._release(event)
                            continue
                        bucket[write] = event
                        t = event.time
                        if t < top:
                            if best is None or t < best_t:
                                best = event
                                best_t = t
                                best_i = write
                            elif t == best_t and event.sortkey < best.sortkey:
                                best = event
                                best_i = write
                        write += 1
                    del bucket[write:]
                else:
                    for i, event in enumerate(bucket):
                        t = event.time
                        if t < top:
                            if best is None or t < best_t:
                                best = event
                                best_t = t
                                best_i = i
                            elif t == best_t and event.sortkey < best.sortkey:
                                best = event
                                best_i = i
                if best is not None:
                    return best, bucket, best_i, cur, top
            cur = (cur + 1) & mask
            top += width
        # A full lap found nothing in-year: the next event is far away.
        return self._direct_min()

    def _direct_min(self):
        """Vectorised global minimum over the flat time-key vector."""
        events = [
            event
            for bucket in self._buckets
            for event in bucket
            if not event.cancelled
        ]
        if not events:
            return None
        times = np.fromiter(
            (event.time for event in events), _KEY_DTYPE, count=len(events)
        )
        t_min = times.min()
        event = events[int(times.argmin())]
        if int((times == t_min).sum()) > 1:
            # Exact tie resolution through the packed tie words.
            event = min(
                (e for e in events if e.time == t_min),
                key=lambda e: e.sortkey,
            )
        index = self._index_of(event.time)
        bucket = self._buckets[index & self._mask]
        return (
            event,
            bucket,
            bucket.index(event),
            index & self._mask,
            (index + 1) * self._width,
        )

    def _remove(self, found) -> ArenaEvent:
        """Commit the removal of a scanned event."""
        event, bucket, i, cur, top = found
        last = bucket.pop()
        if i < len(bucket):
            bucket[i] = last
        self._cur = cur
        self._cur_top = top
        self._floor = event.time
        event._popped = True
        self._live -= 1
        pending = self._pending_free
        if pending >= 0:
            self._free.append(pending)
        self._pending_free = event.slot
        return event

    def _burst_next(self) -> Optional[ArenaEvent]:
        """Peek the burst tail (the next live event while one is active).

        Releases cancelled entries off the tail as it goes; returns
        ``None`` once the burst is empty, at which point the bucket
        scan takes over.
        """
        burst = self._burst
        while burst:
            event = burst[-1]
            if not event.cancelled:
                return event
            burst.pop()
            self._dead -= 1
            self._release(event)
        return None

    def _remove_burst(self, event: ArenaEvent) -> ArenaEvent:
        """Commit the removal of the burst tail (already the global min)."""
        self._burst.pop()
        self._floor = event.time
        event._popped = True
        self._live -= 1
        pending = self._pending_free
        if pending >= 0:
            self._free.append(pending)
        self._pending_free = event.slot
        return event

    def pop(self) -> ArenaEvent:
        """Remove and return the next live event (IndexError if none)."""
        event = self._burst_next()
        if event is not None:
            return self._remove_burst(event)
        found = self._scan_min()
        if found is None:
            raise IndexError("pop from empty CalendarQueue")
        return self._remove(found)

    def pop_next(self, until: Optional[float] = None) -> Optional[ArenaEvent]:
        """Pop the next live event unless it fires strictly after ``until``."""
        event = self._burst_next()
        if event is not None:
            if until is not None and event.time > until:
                return None
            return self._remove_burst(event)
        found = self._scan_min()
        if found is None:
            return None
        if until is not None and found[0].time > until:
            return None
        return self._remove(found)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        event = self._burst_next()
        if event is not None:
            return event.time
        found = self._scan_min()
        return None if found is None else found[0].time

    # ------------------------------------------------------------------
    # Arena maintenance
    # ------------------------------------------------------------------
    def _release(self, event: ArenaEvent) -> None:
        """Free a cancelled event's slot (reuse still refcount-gated).

        The payload is dropped so a dead slot never pins the callback's
        object graph: a retained bound method would close the cycle
        ``event -> handler object -> Simulator -> queue -> event`` and
        defer the whole simulation graph to gen-2 garbage collection.
        """
        event.callback = None
        event.args = ()
        event.kwargs = None
        self._gen[event.slot] = event.generation + 1
        self._free.append(event.slot)

    def _compact_burst(self) -> None:
        """Drop cancelled entries from the burst (order is preserved)."""
        burst = self._burst
        if not burst:
            return
        keep = [event for event in burst if not event.cancelled]
        if len(keep) != len(burst):
            for event in burst:
                if event.cancelled:
                    self._dead -= 1
                    self._release(event)
            burst[:] = keep

    def _purge(self) -> None:
        """Sweep cancelled events out of every bucket and the burst."""
        self._compact_burst()
        for bucket in self._buckets:
            if not bucket:
                continue
            write = 0
            for event in bucket:
                if event.cancelled:
                    self._release(event)
                    continue
                bucket[write] = event
                write += 1
            del bucket[write:]
        self._dead = 0

    def _resize(self) -> None:
        """Rebuild the bucket array sized and spaced to the live set.

        An active burst stays out of the rebuild -- it is served before
        any bucket, so its events are position-independent -- but its
        cancelled entries are dropped and its live ones counted.
        """
        slot_obj = self._slot_obj
        self._compact_burst()
        live_events = []
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    self._release(event)
                else:
                    live_events.append(event)
        self._dead = 0
        live = len(live_events)
        self._live = live + len(self._burst)
        nbuckets = 1 << max(
            _MIN_BUCKETS.bit_length() - 1,
            min(_MAX_BUCKETS.bit_length() - 1, live.bit_length()),
        )
        if not live_events:
            self._nbuckets = nbuckets
            self._mask = nbuckets - 1
            self._buckets = [[] for _ in range(nbuckets)]
            self._grow_at = 2 * nbuckets
            # Keep the cursor invariant (its bucket holds _floor) valid
            # under the fresh mask -- a later insert past the floor must
            # find a coherent accept threshold.
            index = self._index_of(self._floor)
            self._cur = index & (nbuckets - 1)
            self._cur_top = (index + 1) * self._width
            self._epoch += 1
            return
        times = np.fromiter(
            (event.time for event in live_events), _KEY_DTYPE, count=live
        )
        finite = times[np.isfinite(times)]
        if len(finite) > 1:
            span = float(finite.max() - finite.min())
            if span > 0.0:
                width = span * 3.0 / live
                if width > 0.0 and np.isfinite(width):
                    self._width = width
                    self._inv = 1.0 / width
        mask = nbuckets - 1
        indices = times * self._inv
        np.clip(indices, -float(_FAR_INDEX), float(_FAR_INDEX), out=indices)
        positions = indices.astype(np.int64) & mask
        buckets: list = [[] for _ in range(nbuckets)]
        for event, position in zip(live_events, positions.tolist()):
            buckets[position].append(event)
        self._nbuckets = nbuckets
        self._mask = mask
        self._buckets = buckets
        self._grow_at = 2 * nbuckets
        i = int(times.argmin())
        t_min = float(times[i])
        index = self._index_of(t_min)
        self._cur = index & mask
        self._cur_top = (index + 1) * self._width
        self._floor = t_min
        self._epoch += 1

    def clear(self) -> None:
        """Drop all queued events, leaving outstanding handles inert.

        Every queued event is marked popped first, so a handle held by
        caller code can no longer cancel its way into the bookkeeping
        of the emptied queue (the same contract as the fixed
        :meth:`EventQueue.clear`).  Sequence numbers keep counting.
        """
        for bucket in self._buckets:
            for event in bucket:
                event._popped = True
        for event in self._burst:
            event._popped = True
        self._burst = []
        self._burst_time = 0.0
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._width = 1.0
        self._inv = 1.0
        self._buckets = [[] for _ in range(_MIN_BUCKETS)]
        self._cur = 0
        self._cur_top = 1.0
        self._floor = 0.0
        self._grow_at = 2 * _MIN_BUCKETS
        self._live = 0
        self._dead = 0
        self._pending_free = -1
        # In-place: make_after closures capture these list objects.
        self._slot_obj.clear()
        self._free.clear()
        self._epoch += 1

    # ------------------------------------------------------------------
    # Fused fast paths wired up by the Simulator
    # ------------------------------------------------------------------
    def rearm(self, event: ArenaEvent, time: float) -> Optional[ArenaEvent]:
        """Re-arm a just-fired event in place (the fused timer path).

        Only the event popped most recently (its slot still pending
        free) can be re-armed; anything else -- foreign handle, stale
        slot, cancelled, still queued -- returns ``None`` and the
        caller falls back to a regular schedule.  The event keeps its
        slot, object, priority and label but takes a *fresh* sequence
        number, so tie order against other same-time events is exactly
        what the oracle's pop+push would have produced.
        """
        slot = event.slot
        if (
            event._queue is not self
            or not event._popped
            or event.cancelled
            or self._pending_free != slot
            or self._slot_obj[slot] is not event
        ):
            return None
        if time != time:  # pragma: no cover - Timer validates interval
            raise SchedulingError("cannot schedule an event at time NaN")
        self._pending_free = -1
        sequence = self._sequence
        self._sequence = sequence + 1
        event.time = time
        event.sequence = sequence
        event._popped = False
        event.generation += 1
        self._insert(event, time)
        return event

    def make_after(self, sim) -> Callable[..., ArenaEvent]:
        """Build the closure installed as ``sim.after``: one call frame
        from caller to armed slot, no keyword re-marshalling."""
        queue = self
        slot_obj = self._slot_obj
        free = self._free
        getrefcount = sys.getrefcount
        # Captured at build time: sim.spans is assigned before the queue
        # backend is wired up.  NULL_SPANS keeps ``current`` pinned at 0,
        # so the unconditional stamp below writes 0 on disabled runs.
        spans = sim.spans
        bias = _PRIORITY_BIAS
        is_callable = callable
        scheduling_error = SchedulingError

        def _validate(delay: float, priority: int) -> None:
            # Off the hot path: only reached for a negative/NaN delay
            # or a non-zero priority.  Raises exactly the errors the
            # oracle's schedule path raises (plus the backend's own
            # priority-range rule); returns for a valid priority.
            if delay < 0:
                raise scheduling_error(
                    f"delay must be non-negative, got {delay}"
                )
            if delay != delay:
                raise scheduling_error(
                    "cannot schedule an event at time NaN"
                )
            if priority < -bias or priority >= bias:
                raise scheduling_error(
                    f"calendar backend priorities must be in "
                    f"[{-bias}, {bias - 1}], got {priority}"
                )

        def after(
            delay: float,
            callback: Callable[..., Any],
            *args: Any,
            priority: int = 0,
            label: str = "",
            **kwargs: Any,
        ) -> ArenaEvent:
            # ``not delay >= 0`` is a single test that is False for
            # every valid delay and True for both rejects (negative or
            # NaN -- NaN fails every comparison), so the steady path
            # pays one branch for the oracle's two checks.
            if not delay >= 0 or priority:
                _validate(delay, priority)
            time = sim._now + delay
            if not is_callable(callback):
                raise scheduling_error(
                    f"callback must be callable, got {callback!r}"
                )
            sequence = queue._sequence
            queue._sequence = sequence + 1
            event = None
            if free:
                slot = free.pop()
                event = slot_obj[slot]
                if getrefcount(event) == 3:
                    event.generation += 1
                    event.time = time
                    event.priority = priority
                    event.sequence = sequence
                    event.callback = callback
                    event.args = args
                    event.kwargs = kwargs if kwargs else None
                    event.cancelled = False
                    event.label = label
                    event._popped = False
                else:
                    free.append(slot)
                    event = None
            if event is None:
                event = queue._arm(
                    time,
                    priority,
                    sequence,
                    callback,
                    args,
                    kwargs if kwargs else None,
                    label,
                )
            # Causal-context stamp: spans.current is 0 whenever span
            # collection is disabled, so this is a plain reset then.
            event.ctx = spans.current
            if queue._burst:
                # Mid-drain: delegate so a same-time arrival joins the
                # sorted burst (or an earlier one flushes it back).
                queue._insert(event, time)
                return event
            # Inline insert (the _insert body, minus a call frame).
            try:
                index = int(time * queue._inv)
            except OverflowError:
                index = _FAR_INDEX if time > 0 else -_FAR_INDEX
            live = queue._live
            if live == 0 or time < queue._floor:
                queue._cur = index & queue._mask
                queue._cur_top = (index + 1) * queue._width
                queue._floor = time
            queue._buckets[index & queue._mask].append(event)
            queue._live = live + 1
            if live >= queue._grow_at:
                queue._resize()
            return event

        return after

    def run_loop(self, sim, until: Optional[float]) -> None:
        """The fused pop+fire loop :meth:`Simulator.run` delegates to.

        Equivalent to ``while (ev := pop_next(until)): fire(ev)`` with
        the scan, removal, deferred slot free and dispatch inlined.
        Honours ``sim.stop()`` and :class:`SimulationFinished` exactly
        like the generic loop; ``sim._events_fired`` is incremented
        *before* each callback so mid-run samples match the oracle.
        Layout attributes are read fresh each iteration, so callbacks
        that push (and thereby resize) the queue are always safe.
        """
        free = self._free
        try:
            self._run_core(sim, until, free)
        finally:
            # Fired events park their slots with the payload still
            # attached; drop those payloads once per run rather than
            # per pop, so a parked slot does not pin its handler graph
            # between runs (a retained bound method closes the cycle
            # ``event -> handler -> Simulator -> queue -> event``,
            # deferring the whole simulation graph to gen-2 GC -- see
            # ``_release``).  Mid-run the LIFO free list recycles slots
            # almost immediately, so per-pop clearing buys nothing.
            self._clear_parked()

    def _clear_parked(self) -> None:
        """Drop payloads from every parked (popped-and-freed) slot."""
        slot_obj = self._slot_obj
        pending = self._pending_free
        if pending >= 0:
            event = slot_obj[pending]
            event.callback = None
            event.args = ()
            event.kwargs = None
        for slot in self._free:
            event = slot_obj[slot]
            event.callback = None
            event.args = ()
            event.kwargs = None

    def _run_core(self, sim, until: Optional[float], free: list) -> None:
        spans = sim.spans
        spans_on = spans.enabled
        while self._live:
            burst = self._burst
            if burst:
                # Drain the sorted same-time cohort off the tail.
                event = burst[-1]
                if event.cancelled:
                    burst.pop()
                    self._dead -= 1
                    self._release(event)
                    continue
                t = event.time
                if until is not None and t > until:
                    return
                burst.pop()
            else:
                bucket = self._buckets[self._cur]
                event = None
                n = len(bucket)
                if n == 1:
                    only = bucket[0]
                    if not only.cancelled and only.time < self._cur_top:
                        event = only
                        index = -1  # singleton: removal is bucket.clear()
                elif n:
                    top = self._cur_top
                    best_t = 0.0
                    index = -1
                    tied = False
                    for i, candidate in enumerate(bucket):
                        if candidate.cancelled:
                            continue
                        t = candidate.time
                        if t < top:
                            if event is None or t < best_t:
                                event = candidate
                                best_t = t
                                index = i
                                tied = False
                            elif t == best_t:
                                tied = True
                                if candidate.sortkey < event.sortkey:
                                    event = candidate
                                    index = i
                    if tied:
                        # Same-time cohort: rescanning it pop by pop is
                        # O(k^2) in the burst size.  Extract it once,
                        # sort descending by sortkey, serve from the
                        # tail (next iteration takes the branch above).
                        self._burst = [
                            e
                            for e in bucket
                            if not e.cancelled and e.time == best_t
                        ]
                        bucket[:] = [
                            e
                            for e in bucket
                            if e.cancelled or e.time != best_t
                        ]
                        self._burst.sort(key=_SORTKEY, reverse=True)
                        self._burst_time = best_t
                        continue
                if event is None:
                    # Cursor bucket exhausted for this year: full scan.
                    event, bucket, index, cur, top = self._scan_min()
                    self._cur = cur
                    self._cur_top = top
                t = event.time
                if until is not None and t > until:
                    return
                # Commit removal (swap-pop; in-bucket order is free).
                if index < 0:
                    bucket.clear()
                else:
                    last = bucket.pop()
                    if index < len(bucket):
                        bucket[index] = last
            self._floor = t
            event._popped = True
            self._live -= 1
            pending = self._pending_free
            if pending >= 0:
                free.append(pending)
            self._pending_free = event.slot
            sim._now = t
            sim._events_fired += 1
            if spans_on:
                # Restore the causal-context token stamped at
                # scheduling time (see repro.obs.spans).
                spans.current = event.ctx
            callback = event.callback
            args = event.args
            kwargs = event.kwargs
            try:
                if kwargs is None:
                    if args:
                        callback(*args)
                    else:
                        callback()
                else:
                    callback(*args, **kwargs)
            except SimulationFinished:
                return
            if sim._stopped:
                return
