"""Opt-in sweep profiling: per-task wall time and phase breakdown.

Set ``TIBFIT_PROFILE=1`` and every :func:`repro.experiments.runner.run_sweep`
task is wrapped in a wall-clock timer plus a **phase breakdown** --
how much of the task sat inside the DES loop, the trust engine's vote
path, the report-clustering heuristic, and the CH decision pipeline
(either backend).  The breakdown feeds a
:class:`SweepProfile`, which aggregates per-point wall time, worker
utilisation and a slowest-point report, and can serialise itself as a
sweep-level manifest next to the per-run artifacts.

Zero overhead when off
----------------------
Phase timing works by *rebinding* the hot callables
(``Simulator.run``, ``TrustTable.cti_vote``, the clustering entry
points -- both the ``Point``-list ``cluster_reports`` and the array
kernel's ``cluster_reports_xy`` -- and the window decision entry
points ``DecisionKernel.decide_rows`` / ``LocationDecisionEngine.decide``,
so the ``decision`` phase covers whichever ``TIBFIT_DECISION`` backend
a run selects) to timing wrappers when
:func:`install_phase_timers` runs, and
restoring the originals on :func:`uninstall_phase_timers`.  Nothing is
touched when profiling is off, so the unprofiled hot paths carry no
residue -- not even a flag check.  The wrappers only time; they forward
arguments and results untouched, which is why a profiled sweep is
bit-identical to an unprofiled one (asserted by
``tests/experiments/test_runner.py``).

``trust``, ``clustering`` and ``decision`` time is spent *inside* DES
callbacks, so those phases are subsets of ``des`` (and ``trust`` /
``clustering`` are in turn mostly subsets of ``decision``, which wraps
the whole window pipeline); the remainder (radio, sensing, scoring,
Python overhead) is reported as the gap between task wall time and the
named phases.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PROFILE_ENV",
    "SweepProfile",
    "TaskProfile",
    "install_phase_timers",
    "phase_snapshot",
    "profiling_requested",
    "reset_phases",
    "uninstall_phase_timers",
]

PROFILE_ENV = "TIBFIT_PROFILE"

_PHASES = ("des", "trust", "clustering", "decision")

_phase_totals: Dict[str, float] = {name: 0.0 for name in _PHASES}
_installed = False
_originals: Dict[str, object] = {}


def profiling_requested(environ=None) -> bool:
    """True when ``TIBFIT_PROFILE`` asks for sweep profiling.

    Empty, ``0``, ``false``, ``no`` and ``off`` (any case) mean off;
    anything else means on.
    """
    if environ is None:
        environ = os.environ
    raw = environ.get(PROFILE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def reset_phases() -> None:
    """Zero the per-phase accumulators (call before each task)."""
    for name in _PHASES:
        _phase_totals[name] = 0.0


def phase_snapshot() -> Dict[str, float]:
    """Copy of the per-phase elapsed seconds since the last reset."""
    return dict(_phase_totals)


def _timed(phase: str, fn):
    totals = _phase_totals
    perf_counter = time.perf_counter

    def wrapper(*args, **kwargs):
        start = perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            totals[phase] += perf_counter() - start

    wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
    wrapper.__name__ = getattr(fn, "__name__", phase)
    return wrapper


def install_phase_timers() -> None:
    """Rebind the phase hot points to timing wrappers (idempotent).

    ``cluster_reports`` is imported *by value* into
    ``repro.core.location`` (and ``cluster_reports_xy``, the array
    kernel's entry point, into ``repro.core.decision_kernel``), so both
    the defining module and each call site are rebound; anything else
    holding a stale reference simply goes untimed rather than breaking.
    """
    global _installed
    if _installed:
        return
    from repro.core import clustering as _clustering
    from repro.core import decision_kernel as _kernel
    from repro.core import location as _location
    from repro.core.decision_kernel import DecisionKernel
    from repro.core.location import LocationDecisionEngine
    from repro.core.trust import TrustTable
    from repro.simkernel.simulator import Simulator

    _originals["sim_run"] = Simulator.run
    _originals["cti_vote"] = TrustTable.cti_vote
    _originals["cluster_reports"] = _clustering.cluster_reports
    _originals["location_cluster_reports"] = _location.cluster_reports
    _originals["cluster_reports_xy"] = _clustering.cluster_reports_xy
    _originals["kernel_cluster_reports_xy"] = _kernel.cluster_reports_xy
    _originals["kernel_decide_rows"] = DecisionKernel.decide_rows
    _originals["engine_decide"] = LocationDecisionEngine.decide

    Simulator.run = _timed("des", Simulator.run)  # type: ignore[assignment]
    TrustTable.cti_vote = _timed(  # type: ignore[assignment]
        "trust", TrustTable.cti_vote
    )
    timed_clustering = _timed("clustering", _clustering.cluster_reports)
    _clustering.cluster_reports = timed_clustering
    _location.cluster_reports = timed_clustering
    timed_clustering_xy = _timed(
        "clustering", _clustering.cluster_reports_xy
    )
    _clustering.cluster_reports_xy = timed_clustering_xy
    _kernel.cluster_reports_xy = timed_clustering_xy
    # Both window-pipeline entry points share one phase so "decision"
    # reads the same no matter which TIBFIT_DECISION backend runs.  The
    # array kernel's small-window route bypasses cluster_reports_xy
    # entirely (flat scalar clustering), so without this rebind the
    # array backend would profile as near-zero clustering and nothing
    # else -- the gap this phase closes.
    DecisionKernel.decide_rows = _timed(  # type: ignore[assignment]
        "decision", DecisionKernel.decide_rows
    )
    LocationDecisionEngine.decide = _timed(  # type: ignore[assignment]
        "decision", LocationDecisionEngine.decide
    )
    _installed = True


def uninstall_phase_timers() -> None:
    """Restore the original hot-point callables (idempotent)."""
    global _installed
    if not _installed:
        return
    from repro.core import clustering as _clustering
    from repro.core import decision_kernel as _kernel
    from repro.core import location as _location
    from repro.core.decision_kernel import DecisionKernel
    from repro.core.location import LocationDecisionEngine
    from repro.core.trust import TrustTable
    from repro.simkernel.simulator import Simulator

    Simulator.run = _originals.pop("sim_run")  # type: ignore[assignment]
    TrustTable.cti_vote = _originals.pop(  # type: ignore[assignment]
        "cti_vote"
    )
    _clustering.cluster_reports = _originals.pop("cluster_reports")
    _location.cluster_reports = _originals.pop("location_cluster_reports")
    _clustering.cluster_reports_xy = _originals.pop("cluster_reports_xy")
    _kernel.cluster_reports_xy = _originals.pop("kernel_cluster_reports_xy")
    DecisionKernel.decide_rows = _originals.pop(  # type: ignore[assignment]
        "kernel_decide_rows"
    )
    LocationDecisionEngine.decide = _originals.pop(  # type: ignore[assignment]
        "engine_decide"
    )
    _installed = False


# ----------------------------------------------------------------------
# Sweep-level aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskProfile:
    """Timing record for one sweep task (picklable across workers)."""

    point: float
    trial: int
    wall_s: float
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def unattributed_s(self) -> float:
        """Wall time outside the DES loop entirely."""
        return max(0.0, self.wall_s - self.phases.get("des", 0.0))


class SweepProfile:
    """Aggregated timing view of one profiled :func:`run_sweep` call."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.tasks: List[TaskProfile] = []
        self.total_wall_s: float = 0.0

    def add(self, task: TaskProfile) -> None:
        self.tasks.append(task)

    # -- aggregations ---------------------------------------------------
    def task_wall_total(self) -> float:
        """Sum of per-task wall time (the work actually done)."""
        return sum(t.wall_s for t in self.tasks)

    def per_point(self) -> Dict[float, float]:
        """Total task wall seconds per sweep point, in point order."""
        out: Dict[float, float] = {}
        for task in self.tasks:
            out[task.point] = out.get(task.point, 0.0) + task.wall_s
        return out

    def phase_totals(self) -> Dict[str, float]:
        """Summed phase seconds across every task."""
        out: Dict[str, float] = {name: 0.0 for name in _PHASES}
        for task in self.tasks:
            for name, elapsed in task.phases.items():
                out[name] = out.get(name, 0.0) + elapsed
        return out

    def utilisation(self) -> float:
        """Fraction of the worker pool's wall-clock capacity doing tasks.

        1.0 means every worker was busy for the sweep's whole duration;
        serial sweeps sit near 1.0 by construction, parallel sweeps
        reveal pool startup and tail-chunk starvation.
        """
        if self.total_wall_s <= 0.0 or self.workers <= 0:
            return 0.0
        return min(
            1.0, self.task_wall_total() / (self.total_wall_s * self.workers)
        )

    def slowest(self, n: int = 5) -> List[TaskProfile]:
        """The ``n`` slowest tasks, slowest first."""
        return sorted(self.tasks, key=lambda t: -t.wall_s)[:n]

    # -- serialisation --------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A JSON-serialisable sweep summary document."""
        return {
            "tasks": len(self.tasks),
            "workers": self.workers,
            "total_wall_s": self.total_wall_s,
            "task_wall_total_s": self.task_wall_total(),
            "utilisation": self.utilisation(),
            "per_point_wall_s": {
                f"{point:g}": wall for point, wall in self.per_point().items()
            },
            "phase_totals_s": self.phase_totals(),
            "slowest": [
                {
                    "point": t.point,
                    "trial": t.trial,
                    "wall_s": t.wall_s,
                    "phases": dict(t.phases),
                }
                for t in self.slowest()
            ],
        }

    def to_manifest(self) -> Dict[str, object]:
        """A sweep-level manifest embedding the timing summary."""
        from repro.obs.export import build_manifest

        manifest = build_manifest(
            kind="sweep",
            config={"profile": self.summary()},
            seed=0,
            timings={"total_wall_s": self.total_wall_s},
            counts={"tasks": len(self.tasks), "workers": self.workers},
        )
        return manifest

    def render(self) -> str:
        """Terminal-friendly multi-line summary."""
        lines = [
            f"sweep profile: {len(self.tasks)} tasks, "
            f"{self.workers} worker(s), wall {self.total_wall_s:.2f}s, "
            f"utilisation {self.utilisation():.0%}",
        ]
        phases = self.phase_totals()
        task_total = self.task_wall_total()
        lines.append(
            "  phase totals: "
            + ", ".join(
                f"{name} {phases.get(name, 0.0):.2f}s" for name in _PHASES
            )
            + f" (task wall {task_total:.2f}s)"
        )
        lines.append("  per-point wall:")
        for point, wall in self.per_point().items():
            lines.append(f"    point {point:g}: {wall:.2f}s")
        lines.append("  slowest tasks:")
        for task in self.slowest(3):
            phase_bits = ", ".join(
                f"{k} {v:.2f}s" for k, v in sorted(task.phases.items())
            )
            lines.append(
                f"    point {task.point:g} trial {task.trial}: "
                f"{task.wall_s:.2f}s ({phase_bits})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SweepProfile(tasks={len(self.tasks)}, workers={self.workers}, "
            f"wall={self.total_wall_s:.2f}s)"
        )
