#!/usr/bin/env python
"""Chaos campaign: stress TIBFIT under injected infrastructure faults.

Builds a small binary cluster with two compromised nodes, then runs the
same fixed-seed simulation under four fault plans -- none, a burst-loss
window, node crash/recover churn, and a cluster-head crash with standby
failover -- checking the runtime invariants on every run and printing a
side-by-side summary.  Everything is deterministic: re-running this
script reproduces every number and fingerprint exactly.

Run:
    python examples/chaos_campaign.py
"""

from repro.chaos.campaign import (
    CampaignConfig,
    resolve_plans,
    run_campaign,
    summarise,
)
from repro.chaos.plan import ChannelWindow, FaultPlan

config = CampaignConfig(
    n_nodes=10,
    n_rounds=15,
    fault_fraction=0.2,
    diagnosis_threshold=0.3,
)

# Three builtin plans plus one hand-written timeline: a mid-run squall
# that drops 70% of all traffic for five rounds.
plans = resolve_plans(["empty", "node-churn", "ch-crash"], config)
plans.append(
    FaultPlan(
        name="squall",
        windows=(
            ChannelWindow(start=50.0, end=100.0, loss_probability=0.7),
        ),
    )
)

results = run_campaign(plans, seeds=range(2), config=config)
print(summarise(results))

worst = min(results, key=lambda r: r.accuracy)
print(
    f"\nworst cell: plan={worst.plan!r} seed={worst.seed} "
    f"accuracy={worst.accuracy:.3f} ({worst.dropped} transmissions lost)"
)
assert all(r.ok for r in results), "runtime invariants must hold"
