"""Stable priority queue of scheduled simulation events.

Determinism contract
--------------------
Two events scheduled for the same simulation time fire in a total order
defined by ``(time, priority, sequence)``:

* lower ``priority`` first (default 0),
* ties broken by insertion order (``sequence``).

This makes every run a pure function of the seed set, which the TIBFIT
experiments rely on for reproducibility.

Hot-path notes
--------------
The queue sits under every simulated packet, vote, and timer, so the
representation is tuned for per-event cost:

* heap entries are plain ``(time, priority, sequence, event)`` tuples,
  so ``heapq`` sifts compare precomputed keys in C instead of calling
  back into a Python ``__lt__``;
* :class:`ScheduledEvent` is a ``__slots__`` class built positionally
  (no dataclass keyword machinery, no per-event ``__dict__``);
* the common no-kwargs schedule stores ``kwargs=None`` and
  :meth:`ScheduledEvent.fire` skips the ``**`` unpacking entirely.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simkernel.errors import SchedulingError


class ScheduledEvent:
    """A single entry in the event queue.

    Ordering is by ``(time, priority, sequence)``; the callback and its
    arguments play no part in comparisons (the key lives in the heap
    tuple, not on the event).
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "args",
        "kwargs",
        "cancelled",
        "label",
        "ctx",
        "_queue",
        "_popped",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.label = label
        # Causal-context token: the span id in flight when the event was
        # scheduled (see repro.obs.spans).  Stamped by the simulator's
        # scheduling front-ends only when span collection is enabled;
        # 0 means "no context".
        self.ctx = 0
        self._queue = queue
        self._popped = False

    def cancel(self) -> None:
        """Mark this event so the loop skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded on pop.
        Cancelling twice is a no-op, and cancelling an event that has
        already been popped (fired or about to fire) is also a no-op --
        late cancels must not corrupt the queue's live count.
        """
        if self.cancelled or self._popped:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue.note_cancelled()

    def fire(self) -> Any:
        """Invoke the callback with its stored arguments."""
        if self.kwargs is None:
            return self.callback(*self.args)
        return self.callback(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduledEvent(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, label={self.label!r}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` with lazy cancellation."""

    def __init__(self) -> None:
        # Heap of (time, priority, sequence, event) key tuples.
        self._heap: list = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *,
        priority: int = 0,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation ``time``.

        Returns the :class:`ScheduledEvent` handle, which supports
        :meth:`ScheduledEvent.cancel`.
        """
        return self.schedule(
            time, priority, callback, args, kwargs if kwargs else None, label
        )

    def schedule(
        self,
        time: float,
        priority: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: Optional[dict],
        label: str,
    ) -> ScheduledEvent:
        """Positional scheduling core shared with the simulator.

        Same semantics as :meth:`push` without keyword re-marshalling;
        ``kwargs`` must already be ``None`` when empty.  Both scheduler
        backends expose this entry point (see
        :class:`repro.simkernel.calqueue.CalendarQueue`).
        """
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        if time != time:  # NaN check
            raise SchedulingError("cannot schedule an event at time NaN")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = ScheduledEvent(
            time,
            priority,
            sequence,
            callback,
            args,
            kwargs,
            label,
            self,
        )
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event.

        Raises ``IndexError`` when no live events remain.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            event._popped = True
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def pop_next(self, until: Optional[float] = None) -> Optional[ScheduledEvent]:
        """Pop the next live event in one heap pass.

        Returns ``None`` when the queue is empty or when the next live
        event fires strictly after ``until`` (which is then left queued).
        This is the simulator loop's fused peek+pop: one call and one
        lazy-discard scan per event instead of two.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and head[0] > until:
                return None
            heapq.heappop(heap)
            event._popped = True
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Account for an externally cancelled event (bookkeeping only)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop all queued events, leaving outstanding handles inert.

        Every queued event is marked popped before the heap is dropped,
        so handles still held by caller code can neither cancel their
        way into the fresh queue's bookkeeping (``note_cancelled`` on an
        empty queue used to be reachable this way, driving ``_live``
        negative once new events were pushed) nor be double-cancelled.
        Sequence numbers keep counting: clear is a drain, not a rewind.
        """
        for entry in self._heap:
            entry[3]._popped = True
        self._heap.clear()
        self._live = 0
