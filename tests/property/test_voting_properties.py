"""Property-based tests for voting engines and the §5 analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.voting import baseline_success_probability
from repro.core.baseline import MajorityVoter
from repro.core.binary import CtiVoter
from repro.core.trust import TrustParameters, TrustTable

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(
    n=st.integers(min_value=1, max_value=30),
    m_frac=probs,
    p=probs,
    q=probs,
)
def test_success_probability_is_a_probability(n, m_frac, p, q):
    m = round(n * m_frac)
    value = baseline_success_probability(n, m, p, q)
    assert 0.0 <= value <= 1.0 + 1e-12


@given(n=st.integers(min_value=1, max_value=20), p=probs)
def test_identical_populations_make_m_irrelevant(n, p):
    """With q == p, splitting nodes into 'faulty' is a relabeling."""
    baselines = {
        baseline_success_probability(n, m, p, p) for m in range(n + 1)
    }
    assert max(baselines) - min(baselines) < 1e-9


partition = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=20
).map(set)


@given(reporters=partition, others=partition)
@settings(max_examples=80)
def test_cti_vote_with_fresh_trust_matches_majority_vote(reporters, others):
    """With every TI at 1.0, CTI voting degenerates to head counting."""
    non_reporters = others - reporters
    table = TrustTable(TrustParameters(lam=0.25, fault_rate=0.1))
    cti = CtiVoter(table).decide(
        reporters, non_reporters, apply_updates=False
    )
    majority = MajorityVoter().decide(reporters, non_reporters)
    assert cti.occurred == majority.occurred


@given(reporters=partition, others=partition)
@settings(max_examples=80)
def test_vote_partitions_rewarded_and_penalized(reporters, others):
    non_reporters = others - reporters
    table = TrustTable(TrustParameters(lam=0.25, fault_rate=0.1))
    result = CtiVoter(table).decide(reporters, non_reporters)
    assert set(result.rewarded) | set(result.penalized) == (
        set(result.reporters) | set(result.non_reporters)
    )
    assert not set(result.rewarded) & set(result.penalized)


@given(reporters=partition, others=partition)
@settings(max_examples=80)
def test_winning_side_has_larger_or_equal_cti(reporters, others):
    non_reporters = others - reporters
    table = TrustTable(TrustParameters(lam=0.25, fault_rate=0.1))
    result = CtiVoter(table).decide(
        reporters, non_reporters, apply_updates=False
    )
    if result.occurred:
        assert result.cti_reporters >= result.cti_non_reporters
    else:
        assert result.cti_non_reporters >= result.cti_reporters


@given(
    history=st.lists(st.booleans(), min_size=0, max_size=60),
)
@settings(max_examples=60)
def test_vote_verdict_depends_only_on_cti_order(history):
    """Feeding an arbitrary penalty history to node 0 never breaks the
    vote invariant: verdict == (CTI_R > CTI_NR) outside ties."""
    table = TrustTable(TrustParameters(lam=0.25, fault_rate=0.1),
                       node_ids=[0, 1, 2])
    for rewarded in history:
        if rewarded:
            table.reward(0)
        else:
            table.penalize(0)
    voter = CtiVoter(table)
    result = voter.decide([0], [1, 2], apply_updates=False)
    if not result.tie:
        assert result.occurred == (
            result.cti_reporters > result.cti_non_reporters
        )
