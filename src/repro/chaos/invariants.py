"""Runtime invariant checking for simulation runs.

The paper's correctness claims rest on a handful of structural
invariants that should hold in *every* run, chaos-injected or not:

* **TI range** -- every trust index lies in ``[0, 1]`` and every fault
  accumulator ``v`` is non-negative (``TI = exp(-lam * v)``, §3).
* **Code-table consistency** -- the flat-array engine's interned code
  tables agree with the per-node view, and ``below_threshold`` returns
  exactly the strict-``<`` scan of the node TIs.
* **Clock monotonicity** -- trace timestamps never decrease and never
  exceed the simulator clock (the DES contract).
* **Decision-timeline sanity** -- CH decisions are recorded in
  non-decreasing time order within the run's horizon.
* **Diagnosis soundness** -- no node is isolated while its TI is at or
  above the diagnosis threshold (§3.5: only sub-threshold nodes are
  cut off).

:class:`InvariantChecker` evaluates all of these post-hoc over a
completed :class:`~repro.experiments.harness.SimulationRun` (pure
reads -- checking never mutates the run), or periodically *inside* a
run via :meth:`InvariantChecker.install`, failing fast at the first
violation.  Violations are counted into the run's metrics registry
(``chaos.violation.<invariant>``) when one is enabled.

Replay determinism (CTI verdicts are a pure function of ``(plan,
seed)``) is exposed as :func:`run_fingerprint` /
:func:`replay_fingerprint`: two runs with the same construction
fingerprint identically, byte for byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

#: Thresholds probed by the below_threshold consistency check, beyond
#: the run's own diagnosis threshold.
DEFAULT_THRESHOLDS = (0.25, 0.5, 0.75, 0.9)


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which one, and what was observed."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by the assert/in-run paths; carries the violation list."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = tuple(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{lines}"
        )


class InvariantChecker:
    """Evaluates the run invariants; see the module docstring.

    Parameters
    ----------
    thresholds:
        TI thresholds probed by the ``below_threshold`` consistency
        check (the run's diagnosis threshold is always added).
    """

    def __init__(
        self, thresholds: Sequence[float] = DEFAULT_THRESHOLDS
    ) -> None:
        self.thresholds = tuple(thresholds)

    # ------------------------------------------------------------------
    # Individual invariants (each usable standalone)
    # ------------------------------------------------------------------
    def check_trust(
        self, table, extra_thresholds: Iterable[float] = ()
    ) -> List[Violation]:
        """TI range + code-table + below_threshold consistency."""
        out: List[Violation] = []
        tis = table.tis()
        for node_id, ti in tis.items():
            if not 0.0 <= ti <= 1.0:
                out.append(Violation(
                    "ti-range", f"node {node_id} has TI {ti!r} outside [0, 1]"
                ))
        code_v = getattr(table, "_code_v", None)
        code_ti = getattr(table, "_code_ti", None)
        if code_v is not None and code_ti is not None:
            for code, v in enumerate(code_v):
                if v < 0.0:
                    out.append(Violation(
                        "ti-range",
                        f"code {code} has accumulator v={v!r} < 0",
                    ))
            for code, ti in enumerate(code_ti):
                if not 0.0 <= ti <= 1.0:
                    out.append(Violation(
                        "ti-range",
                        f"code {code} has interned TI {ti!r} outside [0, 1]",
                    ))
            params = table.params
            for code, (v, ti) in enumerate(zip(code_v, code_ti)):
                if 0.0 <= ti <= 1.0 and ti != params.ti_of(v):
                    out.append(Violation(
                        "code-table",
                        f"code {code}: interned TI {ti!r} != "
                        f"exp(-lam*{v!r}) = {params.ti_of(v)!r}",
                    ))
        for threshold in dict.fromkeys(
            (*self.thresholds, *extra_thresholds)
        ):
            reported = table.below_threshold(threshold)
            expected = tuple(sorted(
                node for node, ti in tis.items() if ti < threshold
            ))
            if reported != expected:
                out.append(Violation(
                    "below-threshold",
                    f"below_threshold({threshold}) returned {reported}, "
                    f"flat scan of tis() gives {expected}",
                ))
        return out

    def check_clock(self, sim) -> List[Violation]:
        """Trace timestamps are non-decreasing and bounded by ``now``."""
        out: List[Violation] = []
        trace = sim.trace
        if not trace.enabled:
            return out
        last = 0.0
        for record in trace:
            if record.time < last:
                out.append(Violation(
                    "clock-monotonic",
                    f"trace record {record.category!r} at t={record.time} "
                    f"after a record at t={last}",
                ))
            last = max(last, record.time)
        if last > sim.now:
            out.append(Violation(
                "clock-monotonic",
                f"trace reaches t={last} beyond the clock ({sim.now})",
            ))
        return out

    def check_decisions(self, decisions, now: float) -> List[Violation]:
        """Decision log is time-ordered and within the run horizon."""
        out: List[Violation] = []
        last = 0.0
        for record in decisions:
            if record.time < last:
                out.append(Violation(
                    "decision-order",
                    f"decision {record.decision_id} at t={record.time} "
                    f"recorded after one at t={last}",
                ))
            last = max(last, record.time)
            if not 0.0 <= record.time <= now:
                out.append(Violation(
                    "decision-order",
                    f"decision {record.decision_id} at t={record.time} "
                    f"outside [0, {now}]",
                ))
        return out

    def check_diagnosis(self, ch) -> List[Violation]:
        """No node isolated while its TI was at/above the threshold."""
        out: List[Violation] = []
        diagnoser = getattr(ch, "diagnoser", None)
        if diagnoser is None:
            return out
        threshold = diagnoser.ti_threshold
        for entry in diagnoser.log:
            if entry.ti_at_diagnosis >= threshold:
                out.append(Violation(
                    "diagnosis-soundness",
                    f"node {entry.node_id} diagnosed at t={entry.time} "
                    f"with TI {entry.ti_at_diagnosis!r} >= threshold "
                    f"{threshold!r}",
                ))
        diagnosed = set(diagnoser.diagnosed)
        for node_id in diagnoser.isolated:
            if node_id not in diagnosed:
                out.append(Violation(
                    "diagnosis-soundness",
                    f"node {node_id} isolated without a diagnosis entry",
                ))
        return out

    # ------------------------------------------------------------------
    # Whole-run checks
    # ------------------------------------------------------------------
    def check_run(self, run) -> List[Violation]:
        """Every applicable invariant over a (possibly running) run."""
        if run.ch is None or run.sim is None:
            raise ValueError("run must be built before it can be checked")
        extra = (
            (run.diagnosis_threshold,)
            if run.diagnosis_threshold is not None else ()
        )
        violations = [
            *self.check_trust(run.ch.trust, extra_thresholds=extra),
            *self.check_clock(run.sim),
            *self.check_decisions(run.all_decisions(), run.sim.now),
            *self.check_diagnosis(run.ch),
        ]
        metrics = run.sim.metrics
        if metrics.enabled:
            for violation in violations:
                metrics.counter(
                    f"chaos.violation.{violation.invariant}"
                ).inc()
        return violations

    def assert_run(self, run) -> None:
        """Raise :class:`InvariantViolationError` on any violation."""
        violations = self.check_run(run)
        if violations:
            raise InvariantViolationError(violations)

    def install(self, run, interval: float, horizon: float):
        """Check periodically *inside* the run, failing fast.

        Schedules a repeating simulator timer that re-evaluates every
        invariant and raises at the first violation.  ``horizon`` bounds
        the timer (checks run at ``interval, 2*interval, ...`` up to and
        including ``horizon``) -- an unbounded timer would keep the
        event queue non-empty and ``Simulator.run()`` would never drain.
        The extra timer events change ``events_fired`` (never the RNG
        streams, trust state, or decisions), so install the checker only
        when you want in-flight detection rather than bit-identical
        artifacts.
        """
        if run.sim is None:
            raise ValueError("run must be built before installing a checker")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if horizon < interval:
            raise ValueError(
                f"horizon ({horizon}) must be at least one interval "
                f"({interval})"
            )
        return run.sim.every(
            interval,
            self.assert_run,
            run,
            count=int(horizon // interval),
            label="invariant-check",
        )


# ----------------------------------------------------------------------
# Replay determinism
# ----------------------------------------------------------------------
def run_fingerprint(run) -> str:
    """A digest of everything a replay must reproduce bit-identically.

    Covers the final TI of every node, the full decision timeline
    (times, verdicts, locations, supporter/dissenter sets -- decision
    *ids* are excluded: they come from a process-global counter), the
    channel's sent/delivered/dropped totals, and the ground-truth event
    stream.  Two runs of the same ``(config, plan, seed)`` must return
    equal fingerprints regardless of process, worker count, or what ran
    before them.
    """
    hasher = hashlib.sha256()
    for node_id, ti in sorted(run.ch.trust.tis().items()):
        hasher.update(f"ti:{node_id}:{ti!r}\n".encode())
    for record in run.all_decisions():
        location = (
            None if record.location is None
            else (record.location.x, record.location.y)
        )
        hasher.update(
            f"d:{record.time!r}:{record.occurred}:{location!r}:"
            f"{record.supporters}:{record.dissenters}\n".encode()
        )
    for event in run.events:
        hasher.update(
            f"e:{event.event_id}:{event.time!r}:"
            f"{event.location.x!r}:{event.location.y!r}\n".encode()
        )
    channel = run.channel
    hasher.update(
        f"c:{channel.sent}:{channel.delivered}:{channel.dropped}\n".encode()
    )
    return hasher.hexdigest()


def replay_fingerprint(factory: Callable[[], object]) -> str:
    """Build, run, and fingerprint a fresh run from ``factory``.

    ``factory`` must return an un-run
    :class:`~repro.experiments.harness.SimulationRun` (already
    configured with its plan and seed) with a ``run_rounds`` attribute
    or be a zero-argument callable returning ``(run, n_rounds)``.
    """
    built = factory()
    if isinstance(built, tuple):
        run, n_rounds = built
    else:
        raise TypeError("factory must return a (run, n_rounds) tuple")
    run.run(n_rounds)
    return run_fingerprint(run)
