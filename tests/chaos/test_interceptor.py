"""Interceptor semantics on the radio transmit path, plus the
jitter-vs-propagation-delay validation fix in ChannelConfig."""

import pytest

from repro.chaos.plan import (
    ChannelWindow,
    ChaosController,
    FaultPlan,
    NodeOutage,
    PartitionWindow,
)
from repro.network.geometry import Point
from repro.network.messages import Message
from repro.network.node import NetworkNode
from repro.network.radio import ChannelConfig, Intercept, RadioChannel
from repro.simkernel.simulator import Simulator


class Recorder(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id, Point(float(node_id), 0.0))
        self.received = []

    def on_message(self, message):
        self.received.append((self.sim.now, message))


class Ping(Message):
    pass


def make_net(n=3, seed=1):
    sim = Simulator(seed=seed)
    channel = RadioChannel(
        sim, ChannelConfig(loss_probability=0.0, propagation_delay=0.01)
    )
    nodes = [Recorder(i) for i in range(n)]
    for node in nodes:
        channel.register(node)
    return sim, channel, nodes


class TestChannelConfigJitterValidation:
    def test_jitter_above_propagation_delay_is_rejected(self):
        # Regression: a jitter draw near -jitter would schedule the
        # delivery before its own transmission; the old max(0) clamp
        # silently biased the delay distribution instead of failing.
        with pytest.raises(ValueError, match="jitter"):
            ChannelConfig(propagation_delay=0.01, jitter=0.02)

    def test_jitter_equal_to_propagation_delay_is_allowed(self):
        config = ChannelConfig(propagation_delay=0.01, jitter=0.01)
        assert config.jitter == 0.01


class TestInterceptorHook:
    def test_only_one_interceptor_may_be_installed(self):
        _, channel, _ = make_net()
        channel.set_interceptor(lambda s, r, t: None)
        with pytest.raises(ValueError, match="already installed"):
            channel.set_interceptor(lambda s, r, t: None)
        channel.set_interceptor(None)  # uninstall
        channel.set_interceptor(lambda s, r, t: None)

    def test_none_verdict_is_a_plain_delivery(self):
        sim, channel, nodes = make_net()
        channel.set_interceptor(lambda s, r, t: None)
        channel.unicast(nodes[0], 1, Ping(sender=0))
        sim.run()
        assert len(nodes[1].received) == 1
        assert channel.delivered == 1

    def test_drop_verdict_discards_with_chaos_reason(self):
        sim, channel, nodes = make_net()
        channel.set_interceptor(lambda s, r, t: Intercept(True))
        outcome = channel.unicast(nodes[0], 1, Ping(sender=0))
        sim.run()
        assert not outcome.delivered
        assert outcome.reason == "chaos"
        assert nodes[1].received == []
        assert channel.dropped == 1

    def test_extra_delays_duplicate_and_defer(self):
        sim, channel, nodes = make_net()
        channel.set_interceptor(lambda s, r, t: Intercept(False, (0.0, 0.5)))
        channel.unicast(nodes[0], 1, Ping(sender=0))
        sim.run()
        times = [t for t, _ in nodes[1].received]
        assert times == [0.01, 0.51]
        # Channel counters see one transmission, not two.
        assert channel.sent == 1 and channel.delivered == 1


class TestChaosController:
    def run_with_plan(self, plan, n=4, seed=1, sends=None):
        sim, channel, nodes = make_net(n=n, seed=seed)
        controller = ChaosController(plan, sim, channel).install()
        for at, (src, dst) in sends or []:
            sim.at(
                at,
                lambda s=src, d=dst: channel.unicast(
                    nodes[s], d, Ping(sender=s)
                ),
            )
        sim.run()
        return sim, channel, nodes, controller

    def test_burst_loss_window_drops_inside_only(self):
        plan = FaultPlan(windows=(
            ChannelWindow(start=10.0, end=20.0, loss_probability=1.0),
        ))
        _, channel, nodes, _ = self.run_with_plan(
            plan, sends=[(5.0, (0, 1)), (15.0, (0, 1)), (25.0, (0, 1))]
        )
        assert len(nodes[1].received) == 2
        assert channel.dropped == 1

    def test_delay_spike_defers_delivery(self):
        plan = FaultPlan(windows=(
            ChannelWindow(start=10.0, end=20.0, extra_delay=0.4),
        ))
        _, _, nodes, _ = self.run_with_plan(
            plan, sends=[(5.0, (0, 1)), (15.0, (0, 1))]
        )
        times = [t for t, _ in nodes[1].received]
        assert times == [5.01, 15.41]

    def test_duplicate_window_delivers_two_copies(self):
        plan = FaultPlan(windows=(
            ChannelWindow(start=10.0, end=20.0, duplicate_probability=1.0),
        ))
        _, channel, nodes, _ = self.run_with_plan(
            plan, sends=[(15.0, (0, 1))]
        )
        assert len(nodes[1].received) == 2
        assert channel.sent == 1

    def test_partition_cuts_cross_group_traffic_only(self):
        plan = FaultPlan(partitions=(
            PartitionWindow(start=10.0, end=20.0, groups=((0, 1), (2,))),
        ))
        _, channel, nodes, _ = self.run_with_plan(
            plan,
            sends=[
                (15.0, (0, 1)),   # same group: passes
                (15.0, (0, 2)),   # cross group: cut
                (15.0, (3, 2)),   # node 3 unlisted: bridges
                (25.0, (0, 2)),   # window over: passes
            ],
        )
        assert len(nodes[1].received) == 1
        assert len(nodes[2].received) == 2
        assert channel.dropped == 1

    def test_outage_kills_and_revives_node(self):
        plan = FaultPlan(outages=(NodeOutage(node_id=1, start=10.0, end=20.0),))
        _, _, nodes, _ = self.run_with_plan(
            plan, sends=[(15.0, (0, 1)), (25.0, (0, 1))]
        )
        assert nodes[1].alive
        assert len(nodes[1].received) == 1  # only the post-recovery send

    def test_empty_plan_installs_no_interceptor(self):
        sim, channel, _ = make_net()
        ChaosController(FaultPlan(), sim, channel).install()
        assert channel._interceptor is None
        sim.run()
        assert sim.events_fired == 0  # no lifecycle events scheduled

    def test_install_twice_is_an_error(self):
        sim, channel, _ = make_net()
        controller = ChaosController(FaultPlan(), sim, channel).install()
        with pytest.raises(RuntimeError, match="already installed"):
            controller.install()

    def test_ch_crash_without_callback_is_an_error(self):
        from repro.chaos.plan import ChCrash

        sim, channel, _ = make_net()
        plan = FaultPlan(ch_crashes=(ChCrash(start=5.0),))
        with pytest.raises(ValueError, match="ch_crash"):
            ChaosController(plan, sim, channel).install()

    def test_interceptor_draws_nothing_outside_active_spans(self):
        # The chaos stream must stay untouched while no window is
        # active, or empty stretches would still perturb replay state.
        plan = FaultPlan(windows=(
            ChannelWindow(start=10.0, end=20.0, loss_probability=0.5),
        ))
        sim, channel, nodes = make_net(seed=9)
        ChaosController(plan, sim, channel).install()
        probe_rng = Simulator(seed=9).streams.get("chaos")
        channel.unicast(nodes[0], 1, Ping(sender=0))  # t=0: inactive
        sim.run()
        # Same next draw as a virgin stream -> nothing was consumed.
        assert sim.streams.get("chaos").random() == probe_rng.random()
