"""Property-based tests for geometry primitives."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.network.geometry import Point, PolarOffset, Region

coords = st.floats(min_value=-1000.0, max_value=1000.0,
                   allow_nan=False, allow_infinity=False)
points = st.builds(Point, x=coords, y=coords)


@given(a=points, b=points)
def test_distance_symmetry(a, b):
    assert a.distance_to(b) == b.distance_to(a)


@given(a=points, b=points)
def test_distance_nonnegative_and_identity(a, b):
    assert a.distance_to(b) >= 0.0
    assert a.distance_to(a) == 0.0


@given(a=points, b=points, c=points)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


@given(a=points, b=points)
def test_offset_displace_roundtrip(a, b):
    offset = a.offset_to(b)
    back = a.displace(offset)
    assert math.isclose(back.x, b.x, abs_tol=1e-6)
    assert math.isclose(back.y, b.y, abs_tol=1e-6)


@given(a=points, b=points)
def test_offset_range_equals_distance(a, b):
    assert math.isclose(a.offset_to(b).r, a.distance_to(b), abs_tol=1e-9)


@given(
    p=points,
    r=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    theta=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
def test_displacement_moves_exactly_r(p, r, theta):
    moved = p.displace(PolarOffset(r=r, theta=theta))
    assert math.isclose(p.distance_to(moved), r, abs_tol=1e-6)


@given(
    p=points,
    side=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
)
def test_clamp_is_idempotent_and_inside(p, side):
    region = Region.square(side)
    clamped = region.clamp(p)
    assert region.contains(clamped)
    assert region.clamp(clamped) == clamped


@given(
    p=points,
    side=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
)
def test_clamp_fixes_interior_points(p, side):
    region = Region.square(side)
    if region.contains(p):
        assert region.clamp(p) == p


@given(
    r=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    theta=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)
def test_normalised_theta_in_principal_range(r, theta):
    norm = PolarOffset(r, theta).normalised()
    assert -math.pi < norm.theta <= math.pi
    assert norm.r == r
