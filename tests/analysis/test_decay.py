"""Unit tests for the §5 decay analysis (Fig. 11, k_max)."""

import math

import pytest

from repro.analysis.decay import (
    decay_expression,
    figure11_series,
    k_max,
    solve_k,
    sweep_lambda,
)


class TestDecayExpression:
    def test_value_at_zero_is_zero(self):
        assert decay_expression(0.0, 0.25, 11) == pytest.approx(0.0)

    def test_limit_at_infinity_is_one(self):
        assert decay_expression(1e9, 0.25, 11) == pytest.approx(1.0)

    def test_matches_paper_form(self):
        k, lam, n = 3.0, 0.25, 11
        expected = (
            math.exp(-k * lam * (n - 1)) - 2 * math.exp(-k * lam) + 1
        )
        assert decay_expression(k, lam, n) == expected

    def test_negative_region_exists_for_moderate_k(self):
        """Between the trivial root at 0 and the break-even root the
        expression dips negative: those cadences are tolerable."""
        assert decay_expression(1.0, 0.25, 11) < 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            decay_expression(1.0, 0.0, 11)
        with pytest.raises(ValueError):
            decay_expression(1.0, 0.25, 2)


class TestRootSolving:
    def test_root_zeroes_the_expression(self):
        for lam in (0.1, 0.25, 0.5):
            k_star = solve_k(lam, 11)
            assert decay_expression(k_star, lam, 11) == pytest.approx(
                0.0, abs=1e-9
            )

    def test_root_decreases_with_lambda(self):
        """§5: larger lambda tolerates more frequent compromise (smaller
        break-even spacing k*)."""
        pairs = sweep_lambda([0.05, 0.1, 0.25, 0.5, 1.0])
        ks = [k for _lam, k in pairs]
        for earlier, later in zip(ks, ks[1:]):
            assert later < earlier

    def test_root_scales_inversely_with_lambda(self):
        """k* = -ln(x*)/lambda with x* independent of lambda, so
        k*(lam1) * lam1 == k*(lam2) * lam2."""
        k1 = solve_k(0.1, 11)
        k2 = solve_k(0.4, 11)
        assert k1 * 0.1 == pytest.approx(k2 * 0.4, rel=1e-9)

    def test_three_node_network_has_no_finite_root(self):
        assert solve_k(0.25, 3) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_k(0.0, 11)
        with pytest.raises(ValueError):
            solve_k(0.25, 2)


class TestKMax:
    def test_formula(self):
        assert k_max(0.25) == pytest.approx(math.log(3.0) / 0.25)

    def test_endgame_bound_releases_one_more_node(self):
        """After k_max rounds the three remaining correct nodes' lead
        (CTI 3 vs just under 3) shrinks to just under 1: 3 e^{-k lam}
        hits 1 exactly at k_max."""
        lam = 0.25
        assert 3.0 * math.exp(-k_max(lam) * lam) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            k_max(0.0)


class TestFigure11:
    def test_series_has_one_curve_per_lambda(self):
        series = figure11_series(lambdas=(0.1, 0.25))
        assert set(series.keys()) == {0.1, 0.25}

    def test_each_curve_crosses_zero_at_its_root(self):
        series = figure11_series(lambdas=(0.25,), n_nodes=11)
        curve = series[0.25]
        k_star = solve_k(0.25, 11)
        before = [f for k, f in curve if k < k_star - 0.5]
        after = [f for k, f in curve if k > k_star + 0.5]
        assert all(f < 0 for f in before if f != 0)
        assert all(f > 0 for f in after)

    def test_larger_lambda_crosses_earlier(self):
        series = figure11_series(lambdas=(0.1, 0.5), n_nodes=11)

        def crossing(curve):
            for k, f in curve:
                if f > 0:
                    return k
            return math.inf

        assert crossing(series[0.5]) < crossing(series[0.1])
