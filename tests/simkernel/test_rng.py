"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.simkernel.rng import RandomStreams


class TestStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent_objects(self):
        streams = RandomStreams(1)
        assert streams.get("a") is not streams.get("b")

    def test_streams_reproducible_across_registries(self):
        a1 = RandomStreams(99).get("channel").random(10)
        a2 = RandomStreams(99).get("channel").random(10)
        assert np.array_equal(a1, a2)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(10)
        b = RandomStreams(2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_produce_different_sequences(self):
        streams = RandomStreams(5)
        a = streams.get("alpha").random(10)
        b = streams.get("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_stable_under_other_streams(self):
        """Drawing from one stream must not perturb another."""
        s1 = RandomStreams(3)
        s2 = RandomStreams(3)
        _ = s1.get("noise").random(1000)  # extra traffic on s1 only
        a = s1.get("target").random(5)
        b = s2.get("target").random(5)
        assert np.array_equal(a, b)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).get("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")

    def test_names_lists_created_streams(self):
        streams = RandomStreams(0)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]


class TestFork:
    def test_fork_is_reproducible(self):
        a = RandomStreams(7).fork("sub").get("x").random(5)
        b = RandomStreams(7).fork("sub").get("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(7)
        child = parent.fork("sub")
        assert not np.array_equal(
            parent.get("x").random(5), child.get("x").random(5)
        )

    def test_distinct_fork_suffixes_differ(self):
        parent = RandomStreams(7)
        a = parent.fork("a").get("x").random(5)
        b = parent.fork("b").get("x").random(5)
        assert not np.array_equal(a, b)
