"""TIBFIT core: trust-index bookkeeping and event decision engines.

This package is the paper's primary contribution:

* :mod:`repro.core.trust` -- the trust index (TI) model: per-node fault
  accumulator ``v``, ``TI = exp(-lambda * v)``, reward/penalty updates
  (§3), and serialisable trust tables for cluster-head hand-off.
* :mod:`repro.core.binary` -- cumulative-TI voting over reporters vs.
  non-reporters for binary events (§3.1).
* :mod:`repro.core.clustering` -- the K-means-style heuristic grouping
  location reports into event clusters (§3.2).
* :mod:`repro.core.location` -- the full location-determination decision
  engine built from clustering + CTI voting (§3.2).
* :mod:`repro.core.concurrent` -- ``r_error`` circles with per-circle
  timeouts separating concurrent events (§3.3).
* :mod:`repro.core.baseline` -- the stateless majority-voting comparator
  used throughout the evaluation.
* :mod:`repro.core.diagnosis` -- TI-threshold diagnosis and isolation of
  faulty nodes.
"""

from repro.core.baseline import MajorityVoter
from repro.core.binary import BinaryVoteResult, CtiVoter
from repro.core.clustering import ReportCluster, cluster_reports
from repro.core.concurrent import CircleTracker, EventCircle
from repro.core.diagnosis import DiagnosisEntry, FaultDiagnoser
from repro.core.location import (
    LocatedDecision,
    LocationDecisionEngine,
    LocationReport,
)
from repro.core.trust import TrustEntry, TrustParameters, TrustTable

__all__ = [
    "BinaryVoteResult",
    "CircleTracker",
    "CtiVoter",
    "DiagnosisEntry",
    "EventCircle",
    "FaultDiagnoser",
    "LocatedDecision",
    "LocationDecisionEngine",
    "LocationReport",
    "MajorityVoter",
    "ReportCluster",
    "TrustEntry",
    "TrustParameters",
    "TrustTable",
    "cluster_reports",
]
