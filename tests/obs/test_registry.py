"""Unit tests for the metrics registry."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("hits")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert c.snapshot() == {"name": "hits", "type": "counter", "value": 4}

    def test_gauge_keeps_last_value(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        assert g.snapshot()["value"] == 1.5

    def test_histogram_exact_aggregates(self):
        h = Histogram("margin")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(15.0)
        assert snap["mean"] == pytest.approx(5.0)
        assert snap["min"] == 2.0
        assert snap["max"] == 8.0
        assert snap["p50"] == 5.0

    def test_empty_histogram_snapshot_has_no_quantiles(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert "mean" not in snap  # NaN is not strict JSON
        assert "p50" not in snap and "min" not in snap

    def test_empty_histogram_mean_is_nan(self):
        import math

        assert math.isnan(Histogram("empty").mean)

    def test_empty_histogram_quantile_raises(self):
        with pytest.raises(ValueError, match="empty histogram 'empty'"):
            Histogram("empty").quantile(0.5)

    def test_empty_timer_quantile_names_the_kind(self):
        with pytest.raises(ValueError, match="empty timer 'wall'"):
            Timer("wall").quantile(0.9)

    def test_histogram_quantiles_nearest_rank(self):
        h = Histogram("q")
        for v in range(1, 11):
            h.observe(float(v))
        assert h.quantile(0.5) == 5.0
        assert h.quantile(0.9) == 9.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 10.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_reservoir_truncates_quantiles_not_aggregates(self):
        from repro.obs import registry as mod

        h = Histogram("big")
        n = mod._RESERVOIR_MAX + 100
        for v in range(n):
            h.observe(float(v))
        assert h.count == n  # exact past the reservoir
        assert h.max == float(n - 1)
        assert h.truncated
        assert h.snapshot()["truncated"] is True

    def test_timer_context_manager_observes(self):
        t = Timer("wall")
        with t.time():
            pass
        assert t.count == 1
        assert t.sum >= 0.0
        assert t.snapshot()["type"] == "timer"


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_timer_and_histogram_are_distinct_types(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.timer("h")

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.gauge("a").set(1.0)
        assert [r["name"] for r in reg.snapshot()] == ["a", "z"]

    def test_truncated_reservoirs_surface_as_counter(self):
        from repro.obs import registry as mod
        from repro.obs.registry import TRUNCATED_COUNTER

        reg = MetricsRegistry()
        small = reg.histogram("small")
        small.observe(1.0)
        big = reg.histogram("big")
        for v in range(mod._RESERVOIR_MAX + 1):
            big.observe(float(v))
        assert reg.truncated_names() == ["big"]
        records = {r["name"]: r for r in reg.snapshot()}
        assert records[TRUNCATED_COUNTER]["type"] == "counter"
        assert records[TRUNCATED_COUNTER]["value"] == 1
        # Repeat snapshots recompute rather than double-count.
        records = {r["name"]: r for r in reg.snapshot()}
        assert records[TRUNCATED_COUNTER]["value"] == 1

    def test_no_truncation_means_no_truncated_counter(self):
        from repro.obs.registry import TRUNCATED_COUNTER

        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        assert reg.truncated_names() == []
        assert TRUNCATED_COUNTER not in {
            r["name"] for r in reg.snapshot()
        }

    def test_merge_counters_folds_values(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        b.counter("other").inc()
        b.gauge("depth").set(9.0)
        a.merge_counters(b)
        assert a.counter("hits").value == 5
        assert a.counter("other").value == 1
        assert a.get("depth") is None  # gauges are not folded


class TestDisabledPath:
    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled

    def test_disabled_registry_returns_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("radio.sent")
        c.inc()
        reg.gauge("g").set(5.0)
        reg.histogram("h").observe(1.0)
        with reg.timer("t").time():
            pass
        assert len(reg) == 0
        assert reg.snapshot() == []
        # every request resolves to the one shared sink
        assert reg.counter("a") is reg.timer("b")

    def test_emit_site_convention_is_one_attribute_check(self):
        # The guarded form never touches the registry when disabled.
        m = NULL_REGISTRY
        touched = []
        if m.enabled:  # pragma: no cover - must not run
            touched.append(True)
        assert touched == []
