"""Integration: the rotating multi-cluster network under smart adversaries.

The single-CH experiments cover levels 0-2; these tests confirm the
adversary models interact correctly with rotation and trust hand-off.
"""

import numpy as np
import pytest

from repro.clusterctl.leach import LeachConfig
from repro.clusterctl.simulation import RotatingClusterSimulation
from repro.experiments.harness import CorrectSpec, FaultSpec


def build(level, faulty_count=15, seed=31, **kwargs):
    rng = np.random.default_rng(seed + 7)
    faulty = tuple(
        int(x) for x in rng.choice(49, size=faulty_count, replace=False)
    )
    defaults = dict(
        n_nodes=49,
        field_side=70.0,
        sensing_radius=20.0,
        r_error=5.0,
        correct_spec=CorrectSpec(sigma=1.6),
        fault_spec=FaultSpec(level=level, drop_rate=0.25, sigma=4.25),
        faulty_ids=faulty,
        leach=LeachConfig(ch_fraction=0.08, ti_threshold=0.5),
        events_per_leadership=6,
        channel_loss=0.0,
        seed=seed,
    )
    defaults.update(kwargs)
    return RotatingClusterSimulation(**defaults), faulty


class TestSmartAdversariesUnderRotation:
    def test_level1_network_keeps_detecting(self):
        sim, _faulty = build(level=1)
        sim.run(5)
        assert sim.metrics().accuracy >= 0.8

    def test_level2_cells_survive_rotation(self):
        """The collusion coordinator is shared state outside any CH, so
        rotation does not reset the conspiracy -- and the registry still
        learns who the colluders are."""
        sim, faulty = build(level=2, faulty_count=18)
        sim.run(6)
        registry = sim.registry_snapshot()
        lying = [registry.get(n, 1.0) for n in faulty]
        honest = [
            ti for n, ti in registry.items() if n not in set(faulty)
        ]
        assert sum(lying) / len(lying) < sum(honest) / len(honest)

    def test_compromised_nodes_get_barred_from_leadership(self):
        """Once a liar's registry TI sinks below the LEACH threshold it
        stops winning elections in later rounds."""
        sim, faulty = build(level=0, faulty_count=20, seed=37,
                            events_per_leadership=8)
        sim.run(8)
        registry = sim.registry_snapshot()
        barred = {
            n for n in faulty if registry.get(n, 1.0) < 0.5
        }
        assert barred  # diagnosis happened
        # Rounds after the midpoint never elect a barred node.
        late_rounds = sim.rounds[len(sim.rounds) // 2:]
        late_leaders = {
            ch for record in late_rounds for ch in record.cluster_heads
        }
        # Allow the edge case of a node barred only after leading.
        assert len(late_leaders & barred) <= 2

    def test_metrics_report_compromise_ground_truth(self):
        sim, faulty = build(level=1)
        sim.run(3)
        assert sim.metrics().truly_faulty_nodes == tuple(sorted(faulty))


class TestCorruptClusterHeads:
    """§3.4 end to end inside the rotating network: a compromised node
    that wins an election inverts its verdicts, the shadow CHs dissent,
    the base station deposes it, and the corrected verdicts carry the
    system's accuracy."""

    def build_corrupt(self, seed=11):
        sim, faulty = build(
            level=0, faulty_count=15, seed=seed,
            corrupt_elected_faulty=True,
        )
        sim.run(6)
        return sim, faulty

    def test_exactly_the_watchable_corrupt_heads_are_deposed(self):
        """Deposition requires two dissenting shadows (§3.4's 2-of-3
        vote), so a corrupt head of a tiny cluster that could field at
        most one SCH escapes -- faithfully: 'only a single CH failure
        can be tolerated' presumes both shadows exist.  Every corrupt
        head with two shadows is deposed; no honest head ever is."""
        sim, _faulty = self.build_corrupt()
        deposed_hosts = {
            sim.bs._host_of_ch[r.ch_id] for r in sim.bs.resolutions
        }
        corrupt_hosts = set()
        watchable_corrupt = set()
        for record in sim.rounds:
            for host in record.corrupt_heads:
                corrupt_hosts.add(host)
                if len(record.shadows.get(host, ())) >= 2:
                    watchable_corrupt.add(host)
        assert deposed_hosts <= corrupt_hosts  # never a wrongful one
        assert watchable_corrupt <= deposed_hosts

    def test_honest_heads_are_never_deposed_without_corruption(self):
        sim, _faulty = build(
            level=0, faulty_count=15, seed=11,
            corrupt_elected_faulty=False,
        )
        sim.run(6)
        assert sim.bs.resolutions == []

    def test_bs_corrections_restore_system_accuracy(self):
        sim, _faulty = self.build_corrupt()
        if not sim.bs.resolutions:
            return  # no liar led this seed; nothing to correct
        # Raw CH verdicts (with inversions) vs corrected system output.
        from repro.experiments.metrics import score_run

        raw_outcomes, _ = score_run(
            sim.events,
            sorted(sim.decisions, key=lambda d: (d.time, d.decision_id)),
            round_interval=sim.round_interval,
            r_error=sim.r_error,
        )
        raw_acc = sum(o.detected for o in raw_outcomes) / len(raw_outcomes)
        corrected_acc = sim.metrics().accuracy
        assert corrected_acc > raw_acc
        assert corrected_acc >= 0.9

    def test_deposed_hosts_lose_registry_trust(self):
        sim, _faulty = self.build_corrupt()
        registry = sim.registry_snapshot()
        for resolution in sim.bs.resolutions:
            host = sim.bs._host_of_ch[resolution.ch_id]
            assert registry.get(host, 1.0) < 1.0
