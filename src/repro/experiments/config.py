"""Experiment parameter sheets (Tables 1 and 2, plus Experiment 3).

Each config dataclass carries defaults straight out of the paper's
tables so that ``Experiment1Config()`` *is* Table 1 and
``Experiment2Config()`` *is* Table 2.  The ``as_table()`` methods render
the parameter sheets in the papers' row format for the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Experiment1Config:
    """Experiment 1 -- binary events (Table 1).

    | Paper row                  | Field(s)                               |
    |----------------------------|----------------------------------------|
    | Type of Event              | binary (implied by the experiment)     |
    | Independent Variable       | ``percent_faulty_values`` (40%-90%)    |
    | Correct Nodes NER          | ``correct_ner`` (0, 1, 5%)             |
    | Faulty Nodes, missed alarm | ``faulty_miss_rate`` (50%)             |
    | Faulty Nodes, false alarm  | ``faulty_false_alarm_rate`` (0/10/75%) |
    | Size of network            | ``n_nodes`` sensing + 1 CH             |
    | Number of Event neighbors  | ``n_nodes`` (all nodes)                |
    | Events per simulation      | ``events_per_run`` (100)               |
    | lambda                     | ``lam`` (0.1)                          |
    | Fault rate f_r             | ``fault_rate`` (= NER)                 |
    """

    n_nodes: int = 10
    events_per_run: int = 100
    percent_faulty_values: Tuple[float, ...] = (
        40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
    )
    correct_ner: float = 0.01
    faulty_miss_rate: float = 0.5
    faulty_false_alarm_rate: float = 0.0
    lam: float = 0.1
    fault_rate: Optional[float] = None  # None -> same as NER (Table 1)
    use_trust: bool = True
    trials: int = 5
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.events_per_run <= 0:
            raise ValueError("events_per_run must be positive")
        if not 0.0 <= self.correct_ner < 1.0:
            raise ValueError(f"correct_ner must be in [0, 1), got {self.correct_ner}")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        for pf in self.percent_faulty_values:
            if not 0.0 <= pf <= 100.0:
                raise ValueError(f"percent faulty must be in [0, 100], got {pf}")

    @property
    def effective_fault_rate(self) -> float:
        """``f_r``: Table 1 sets it equal to the NER."""
        return self.correct_ner if self.fault_rate is None else self.fault_rate

    def n_faulty(self, percent_faulty: float) -> int:
        """Faulty-node head count at a sweep point (rounded to nearest)."""
        return round(self.n_nodes * percent_faulty / 100.0)

    def as_table(self) -> List[Tuple[str, str]]:
        """Rows mirroring Table 1."""
        pf = self.percent_faulty_values
        return [
            ("Type of Event", "Binary Event Model"),
            (
                "Independent Variable",
                f"Percentage Faulty Nodes: varied from "
                f"{pf[0]:.0f}%-{pf[-1]:.0f}%",
            ),
            ("Correct Nodes NER", f"{100 * self.correct_ner:g}%"),
            (
                "Faulty Nodes",
                f"Missed Alarm {100 * self.faulty_miss_rate:g}%, "
                f"False alarm {100 * self.faulty_false_alarm_rate:g}%",
            ),
            ("Size of network", f"{self.n_nodes} sensing nodes, 1 CH"),
            ("Number of Event neighbors", str(self.n_nodes)),
            ("Events per simulation", str(self.events_per_run)),
            ("lambda", f"{self.lam:g}"),
            ("Fault rate (f_r)", f"{self.effective_fault_rate:g} (same as NER)"
             if self.fault_rate is None else f"{self.fault_rate:g}"),
        ]


@dataclass(frozen=True)
class Experiment2Config:
    """Experiment 2 -- location determination (Table 2).

    | Paper row                   | Field(s)                              |
    |-----------------------------|---------------------------------------|
    | Type of Event               | ``concurrent_events`` (single or not) |
    | Independent variable        | ``percent_faulty_values`` (10%-58%)   |
    | Error rate, correct nodes   | ``sigma_correct`` (1.6 or 2.0)        |
    | Error rate, faulty nodes    | ``sigma_faulty`` (4.25 or 6.0),       |
    |                             | ``faulty_drop_rate`` (25%)            |
    | Size of network             | ``n_nodes`` (100), 5 CH rotations     |
    | Number of event neighbors   | variable on location (r_s)            |
    | lambda                      | ``lam`` (0.25)                        |
    | Fault rate f_r              | ``fault_rate`` (0.1, != NER to        |
    |                             | compensate channel losses)            |
    """

    n_nodes: int = 100
    field_side: float = 100.0
    sensing_radius: float = 20.0
    r_error: float = 5.0
    events_per_run: int = 100
    percent_faulty_values: Tuple[float, ...] = (
        10.0, 20.0, 30.0, 40.0, 50.0, 58.0,
    )
    fault_level: int = 0
    sigma_correct: float = 1.6
    sigma_faulty: float = 4.25
    faulty_drop_rate: float = 0.25
    lam: float = 0.25
    fault_rate: float = 0.1
    channel_loss: float = 0.008
    lower_ti: float = 0.5
    upper_ti: float = 0.8
    concurrent_events: bool = False
    concurrent_batch: int = 2
    use_trust: bool = True
    trials: int = 3
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.fault_level not in (0, 1, 2):
            raise ValueError(f"fault_level must be 0, 1 or 2, got {self.fault_level}")
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.sensing_radius <= 0 or self.r_error <= 0:
            raise ValueError("radii must be positive")
        if not 0.0 <= self.channel_loss < 1.0:
            raise ValueError("channel_loss must be in [0, 1)")
        if self.concurrent_batch < 1:
            raise ValueError("concurrent_batch must be >= 1")

    def n_faulty(self, percent_faulty: float) -> int:
        """Faulty-node head count at a sweep point (rounded to nearest)."""
        return round(self.n_nodes * percent_faulty / 100.0)

    def legend(self, system: str) -> str:
        """The paper's legend format: ``Lvl M W-Z [TIBFIT or Baseline]``."""
        return (
            f"Lvl {self.fault_level} {self.sigma_correct:g}-"
            f"{self.sigma_faulty:g} {system}"
        )

    def as_table(self) -> List[Tuple[str, str]]:
        """Rows mirroring Table 2."""
        pf = self.percent_faulty_values
        return [
            (
                "Type of Event",
                "Location Determination, "
                + ("Concurrent" if self.concurrent_events else "Single")
                + " events",
            ),
            (
                "Independent variable",
                f"Percentage faulty nodes, varied from "
                f"{pf[0]:.0f}%-{pf[-1]:.0f}%",
            ),
            (
                "Error rate for correct nodes",
                f"Location report std. deviation {self.sigma_correct:g}",
            ),
            (
                f"Error rate for faulty nodes (level {self.fault_level})",
                f"Location report std. dev. {self.sigma_faulty:g}, "
                f"drop packets {100 * self.faulty_drop_rate:g}% of the time",
            ),
            ("Size of network", f"{self.n_nodes} sensing nodes"),
            ("Number of event neighbors", "Variable on location"),
            ("lambda", f"{self.lam:g}"),
            (
                "Fault rate (f_r)",
                f"{self.fault_rate:g} (different from NER to compensate "
                "for wireless channel model losses)",
            ),
        ]


@dataclass(frozen=True)
class Experiment3Config:
    """Experiment 3 -- linear decay of the network (§4.3).

    "The network is initialized with 5% of the network compromised by
    level 0 faulty nodes.  After every 50 events 5% more of the network
    is compromised until 75% of the network is compromised."
    """

    n_nodes: int = 100
    field_side: float = 100.0
    sensing_radius: float = 20.0
    r_error: float = 5.0
    initial_percent: float = 5.0
    step_percent: float = 5.0
    events_per_step: int = 50
    final_percent: float = 75.0
    sigma_correct: float = 1.6
    sigma_faulty: float = 4.25
    faulty_drop_rate: float = 0.25
    lam: float = 0.25
    fault_rate: float = 0.1
    channel_loss: float = 0.008
    use_trust: bool = True
    trials: int = 3
    seed: int = 2005

    def __post_init__(self) -> None:
        if not 0.0 <= self.initial_percent <= self.final_percent <= 100.0:
            raise ValueError("need 0 <= initial <= final <= 100 percent")
        if self.step_percent <= 0:
            raise ValueError("step_percent must be positive")
        if self.events_per_step <= 0:
            raise ValueError("events_per_step must be positive")

    @property
    def n_steps(self) -> int:
        """How many compromise escalations happen after initialisation."""
        span = self.final_percent - self.initial_percent
        return int(round(span / self.step_percent))

    @property
    def total_events(self) -> int:
        """Events across the whole decay schedule."""
        return (self.n_steps + 1) * self.events_per_step

    def percent_at_step(self, step: int) -> float:
        """Compromised percentage during step ``step`` (0-based)."""
        if step < 0:
            raise ValueError("step must be non-negative")
        return min(
            self.final_percent,
            self.initial_percent + step * self.step_percent,
        )

    def legend(self, system: str) -> str:
        """Legend string in the paper's ``W-Z [system]`` format."""
        return f"{self.sigma_correct:g}-{self.sigma_faulty:g} {system}"
