"""Cumulative-TI voting for binary events (§3.1).

After the report-collection window ``T_out`` closes, the cluster head
partitions the event neighbours into the reporters ``R`` and the
non-reporters ``NR``, sums each group's trust indices, and lets the
group with the larger cumulative trust index (CTI) win.  Trust of the
winners is raised, trust of the losers lowered, providing detection,
diagnosis, and masking in one step.  A small group of reliable nodes can
outvote a larger group of distrusted ones -- this is the mechanism that
lets TIBFIT survive a compromised *majority* once enough state exists.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, NamedTuple, Tuple

from repro.core.trust import TrustTable
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import NULL_SPANS


class BinaryVoteResult(NamedTuple):
    """Outcome of one CTI vote.

    A NamedTuple (rather than a dataclass) because one is constructed
    per vote and C-level tuple construction keeps it off the hot path's
    profile.

    Attributes
    ----------
    occurred:
        The CH's verdict: did the event happen?
    reporters / non_reporters:
        The two partitions as sorted tuples.
    cti_reporters / cti_non_reporters:
        Each group's cumulative TI *before* updates were applied.
    tie:
        True when both CTIs were exactly equal (verdict then follows the
        tie-break rule; see :class:`CtiVoter`).
    rewarded / penalized:
        Node ids whose trust moved up / down as a consequence.
    """

    occurred: bool
    reporters: Tuple[int, ...]
    non_reporters: Tuple[int, ...]
    cti_reporters: float
    cti_non_reporters: float
    tie: bool
    rewarded: Tuple[int, ...]
    penalized: Tuple[int, ...]

    @property
    def margin(self) -> float:
        """Winning CTI minus losing CTI (0 on a tie)."""
        return abs(self.cti_reporters - self.cti_non_reporters)


class CtiVoter:
    """Stateful CTI voting engine bound to a :class:`TrustTable`.

    Parameters
    ----------
    trust:
        The trust table to read and (optionally) update.
    tie_breaks_to_occurred:
        §3.1 does not define the exact-tie case, but the §5 analysis
        requires a *strict* majority (``Z >= floor(N/2) + 1``), so the
        default (False) makes an exact tie fail -- no event.  Flip to
        study the other convention (cheaper false positives).
    """

    #: Span collector (rebound by ``ClusterHead.attach``).  The voter is
    #: the single funnel for every CTI vote -- scalar, memoised, and
    #: reference table paths all pass through :meth:`decide` -- so the
    #: ``trust.vote`` span lives here; the table-level transition spans
    #: stay silent during the vote (``TrustTable._in_vote``).
    spans = NULL_SPANS

    def __init__(
        self, trust: TrustTable, tie_breaks_to_occurred: bool = False
    ) -> None:
        self.trust = trust
        self.tie_breaks_to_occurred = tie_breaks_to_occurred
        self.votes_taken = 0
        # Instrumented callers (ClusterHead.attach) swap in a live
        # registry; the disabled default costs one attribute check per
        # vote, guarded by the kernel throughput bench.
        self.metrics = NULL_REGISTRY

    def decide(
        self,
        reporters: Iterable[int],
        non_reporters: Iterable[int],
        apply_updates: bool = True,
    ) -> BinaryVoteResult:
        """Run one CTI vote over an ``R`` / ``NR`` partition.

        Parameters
        ----------
        reporters:
            Event neighbours that reported the event within ``T_out``.
        non_reporters:
            Event neighbours that stayed silent.
        apply_updates:
            When False the vote is advisory -- trust is read but not
            written.  Shadow cluster heads use their own cloned tables,
            but read-only votes are also useful for what-if analysis.

        Both the object decision engine and the array decision kernel
        feed sorted tuples of plain Python ints here, so the trust
        table's partition memo (keyed on the raw tuples) hits
        identically regardless of backend.

        Raises
        ------
        ValueError
            If the two groups overlap (a node cannot be both).
        """
        metrics = self.metrics
        spans = self.spans
        if spans.enabled:
            # Pre-vote TIs must be read before cti_vote mutates the
            # table.  Sorting here matches the sorted r/nr tuples the
            # vote returns, so the ti lists align index-for-index.
            reporters = tuple(sorted(reporters))
            non_reporters = tuple(sorted(non_reporters))
            ti = self.trust.ti
            pre_r = [ti(n) for n in reporters]
            pre_nr = [ti(n) for n in non_reporters]
        if metrics.enabled:
            start = perf_counter()
            occurred, r, nr, cti_r, cti_nr, tie, winners, losers = (
                self.trust.cti_vote(
                    reporters,
                    non_reporters,
                    apply_updates=apply_updates,
                    tie_breaks_to_occurred=self.tie_breaks_to_occurred,
                )
            )
            metrics.timer("trust.vote.wall").observe(perf_counter() - start)
            metrics.histogram("trust.vote.margin").observe(
                abs(cti_r - cti_nr)
            )
            metrics.counter("trust.votes").inc()
        else:
            occurred, r, nr, cti_r, cti_nr, tie, winners, losers = (
                self.trust.cti_vote(
                    reporters,
                    non_reporters,
                    apply_updates=apply_updates,
                    tie_breaks_to_occurred=self.tie_breaks_to_occurred,
                )
            )
        self.votes_taken += 1
        if spans.enabled:
            vote_ctx = spans.point(
                "trust.vote",
                parent=spans.current,
                occurred=occurred,
                tie=tie,
                cti_r=cti_r,
                cti_nr=cti_nr,
                reporters=list(r),
                non_reporters=list(nr),
                ti_r=pre_r,
                ti_nr=pre_nr,
                applied=apply_updates,
            )
            if apply_updates:
                ti = self.trust.ti
                if winners:
                    spans.point(
                        "trust.reward",
                        parent=vote_ctx,
                        nodes=list(winners),
                        ti=[ti(n) for n in winners],
                    )
                if losers:
                    spans.point(
                        "trust.penalize",
                        parent=vote_ctx,
                        nodes=list(losers),
                        ti=[ti(n) for n in losers],
                    )
        return BinaryVoteResult(
            occurred, r, nr, cti_r, cti_nr, tie, winners, losers
        )

    def preview(self, reporters: Iterable[int], non_reporters: Iterable[int]) -> bool:
        """What the verdict *would* be, with no trust mutation."""
        return self.decide(reporters, non_reporters, apply_updates=False).occurred

    def trust_snapshot(self) -> Dict[int, float]:
        """Convenience passthrough of the current TI map."""
        return self.trust.tis()
