"""Unit tests for run scoring."""

import pytest

from repro.clusterctl.head import DecisionRecord
from repro.experiments.metrics import EventOutcome, RunMetrics, score_run
from repro.network.geometry import Point
from repro.sensors.generator import GroundTruthEvent


def event(event_id, t, x=50.0, y=50.0):
    return GroundTruthEvent(event_id=event_id, time=t, location=Point(x, y))


def decision(decision_id, t, occurred=True, x=50.0, y=50.0, located=True):
    return DecisionRecord(
        decision_id=decision_id,
        time=t,
        occurred=occurred,
        location=Point(x, y) if located else None,
        supporters=(),
        dissenters=(),
    )


class TestBinaryScoring:
    def test_upheld_decision_in_window_detects(self):
        outcomes, fp = score_run(
            [event(1, 10.0)], [decision(1, 11.0)], round_interval=10.0
        )
        assert outcomes[0].detected
        assert fp == 0

    def test_rejected_decision_does_not_detect(self):
        outcomes, _ = score_run(
            [event(1, 10.0)],
            [decision(1, 11.0, occurred=False)],
            round_interval=10.0,
        )
        assert not outcomes[0].detected

    def test_decision_outside_window_does_not_detect(self):
        outcomes, _ = score_run(
            [event(1, 10.0)], [decision(1, 25.0)], round_interval=10.0
        )
        assert not outcomes[0].detected

    def test_one_decision_cannot_cover_two_events(self):
        outcomes, _ = score_run(
            [event(1, 10.0), event(2, 10.0)],
            [decision(1, 11.0)],
            round_interval=10.0,
        )
        assert sum(o.detected for o in outcomes) == 1


class TestLocationScoring:
    def test_detection_requires_r_error_proximity(self):
        outcomes, _ = score_run(
            [event(1, 10.0, x=50.0)],
            [decision(1, 11.0, x=54.0)],
            round_interval=10.0,
            r_error=5.0,
        )
        assert outcomes[0].detected
        assert outcomes[0].localisation_error == pytest.approx(4.0)

    def test_distant_decision_is_not_a_detection(self):
        outcomes, _ = score_run(
            [event(1, 10.0, x=50.0)],
            [decision(1, 11.0, x=60.0)],
            round_interval=10.0,
            r_error=5.0,
        )
        assert not outcomes[0].detected

    def test_nearest_of_several_decisions_wins(self):
        outcomes, _ = score_run(
            [event(1, 10.0, x=50.0)],
            [decision(1, 11.0, x=54.0), decision(2, 11.5, x=51.0)],
            round_interval=10.0,
            r_error=5.0,
        )
        assert outcomes[0].localisation_error == pytest.approx(1.0)

    def test_unlocated_decision_cannot_detect_in_location_mode(self):
        outcomes, _ = score_run(
            [event(1, 10.0)],
            [decision(1, 11.0, located=False)],
            round_interval=10.0,
            r_error=5.0,
        )
        assert not outcomes[0].detected

    def test_concurrent_events_matched_separately(self):
        outcomes, _ = score_run(
            [event(1, 10.0, x=20.0), event(2, 10.0, x=80.0)],
            [decision(1, 11.0, x=20.5), decision(2, 11.0, x=79.5)],
            round_interval=10.0,
            r_error=5.0,
        )
        assert all(o.detected for o in outcomes)


class TestFalsePositives:
    def test_quiet_window_upheld_decision_counts(self):
        outcomes, fp = score_run(
            [event(1, 10.0)],
            [decision(1, 11.0), decision(2, 16.0)],
            round_interval=10.0,
            quiet_window_offset=5.0,
        )
        assert outcomes[0].detected
        assert fp == 1

    def test_rejected_quiet_decision_not_counted(self):
        _outcomes, fp = score_run(
            [event(1, 10.0)],
            [decision(2, 16.0, occurred=False)],
            round_interval=10.0,
            quiet_window_offset=5.0,
        )
        assert fp == 0

    def test_event_decision_after_quiet_offset_not_a_detection(self):
        outcomes, fp = score_run(
            [event(1, 10.0)],
            [decision(1, 16.0)],
            round_interval=10.0,
            quiet_window_offset=5.0,
        )
        assert not outcomes[0].detected
        assert fp == 1  # it falls in the quiet window instead


class TestRunMetrics:
    def make_metrics(self):
        outcomes = [
            EventOutcome(1, 10.0, Point(0, 0), True, 1.0),
            EventOutcome(2, 20.0, Point(0, 0), True, 3.0),
            EventOutcome(3, 30.0, Point(0, 0), False, None),
            EventOutcome(4, 40.0, Point(0, 0), True, 2.0),
        ]
        return RunMetrics(
            outcomes=outcomes,
            false_positive_decisions=2,
            quiet_windows=4,
            decisions_total=6,
            diagnosed_nodes=(1, 2, 9),
            truly_faulty_nodes=(1, 2, 3),
        )

    def test_accuracy(self):
        assert self.make_metrics().accuracy == pytest.approx(0.75)

    def test_empty_run_accuracy_is_one(self):
        assert RunMetrics().accuracy == 1.0

    def test_false_positive_rate(self):
        assert self.make_metrics().false_positive_rate == pytest.approx(0.5)

    def test_mean_localisation_error(self):
        assert self.make_metrics().mean_localisation_error == pytest.approx(
            2.0
        )

    def test_diagnosis_recall_and_false_positives(self):
        m = self.make_metrics()
        assert m.diagnosis_recall == pytest.approx(2 / 3)
        assert m.diagnosis_false_positives == 1

    def test_diagnosis_precision_with_wrong_accusation(self):
        # 3 diagnosed, one of them (node 9) is not truly faulty
        assert self.make_metrics().diagnosis_precision == pytest.approx(
            2 / 3
        )

    def test_diagnosis_precision_perfect_when_nothing_diagnosed(self):
        m = RunMetrics(truly_faulty_nodes=(1, 2))
        assert m.diagnosis_precision == 1.0
        assert m.diagnosis_recall == 0.0

    def test_diagnosis_precision_all_wrong(self):
        m = RunMetrics(diagnosed_nodes=(5, 6), truly_faulty_nodes=(1,))
        assert m.diagnosis_precision == 0.0
        assert m.diagnosis_false_positives == 2

    def test_zero_event_run_defaults(self):
        m = RunMetrics()
        assert m.events_total == 0
        assert m.events_detected == 0
        assert m.accuracy == 1.0
        assert m.false_positive_rate == 0.0
        assert m.mean_localisation_error is None
        assert m.diagnosis_recall == 1.0
        assert m.diagnosis_precision == 1.0
        assert m.accuracy_over_windows(3) == []

    def test_false_positive_rate_guards_zero_quiet_windows(self):
        # decisions can be spurious even when no quiet windows were
        # driven; the *rate* is defined over quiet windows only
        m = RunMetrics(false_positive_decisions=4, quiet_windows=0)
        assert m.false_positive_decisions == 4
        assert m.false_positive_rate == 0.0

    def test_accuracy_over_windows(self):
        m = self.make_metrics()
        series = m.accuracy_over_windows(window=2)
        assert series == [(0, 1.0), (1, 0.5)]

    def test_accuracy_over_windows_validation(self):
        with pytest.raises(ValueError):
            self.make_metrics().accuracy_over_windows(0)

    def test_score_run_validation(self):
        with pytest.raises(ValueError):
            score_run([], [], round_interval=0.0)
