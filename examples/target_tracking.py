#!/usr/bin/env python
"""Tracking a mobile target through a partially compromised field.

§3.2's motivating problem: "a network is attempting to track a mobile
sensor node that is transmitting a signal as it moves throughout the
network."  A target crosses a 100x100 field along a dog-leg path,
transmitting every few time units; each transmission is located by the
cluster head from the (noisy, partly malicious) reports of the sensors
in range.  A third of the sensors are compromised naive liars.

The output reconstructs the track sample by sample: true position,
TIBFIT's estimate, and the localisation error.

Run:
    python examples/target_tracking.py
"""

import numpy as np

from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.core.trust import TrustParameters
from repro.network.geometry import Point, Region
from repro.network.radio import ChannelConfig, RadioChannel
from repro.network.topology import grid_deployment
from repro.sensors.node import SensorNode
from repro.sensors.sensing import SensingConfig, SensingModel
from repro.sensors.specs import (
    CorrectSpec,
    FaultSpec,
    make_correct_behavior,
    make_faulty_behavior,
)
from repro.sensors.trajectory import TargetTracker, Trajectory
from repro.experiments.reporting import render_table
from repro.simkernel.simulator import Simulator

N_NODES = 100
FIELD = 100.0
COMPROMISED = 35
SEED = 29
CH_ID = 10_000
SAMPLE_PERIOD = 8.0


def main() -> None:
    sim = Simulator(seed=SEED)
    channel = RadioChannel(sim, ChannelConfig(loss_probability=0.008))
    region = Region.square(FIELD)
    deployment = grid_deployment(N_NODES, region)
    trust_params = TrustParameters(lam=0.25, fault_rate=0.1)
    sensing = SensingModel(
        SensingConfig(sensing_radius=20.0, location_sigma=1.6)
    )

    ch = ClusterHead(
        node_id=CH_ID,
        position=region.center,
        deployment=deployment,
        config=ClusterHeadConfig(
            mode="location",
            t_out=1.0,
            sensing_radius=20.0,
            r_error=5.0,
            trust=trust_params,
        ),
    )
    channel.register(ch)

    rng = np.random.default_rng(SEED)
    captured = set(
        int(x) for x in rng.choice(N_NODES, size=COMPROMISED, replace=False)
    )
    nodes = {}
    for node_id in deployment.node_ids():
        if node_id in captured:
            behavior = make_faulty_behavior(
                FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
                sensing, node_id, trust_params,
            )
        else:
            behavior = make_correct_behavior(CorrectSpec(sigma=1.6), sensing)
        node = SensorNode(
            node_id=node_id,
            position=deployment.position_of(node_id),
            behavior=behavior,
            sensing=sensing,
            ch_id=CH_ID,
            rng=sim.streams.get(f"node-{node_id}"),
            region=region,
        )
        nodes[node_id] = node
        channel.register(node)

    trajectory = Trajectory(
        waypoints=[
            Point(5.0, 10.0),
            Point(60.0, 35.0),
            Point(40.0, 75.0),
            Point(95.0, 90.0),
        ],
        speed=3.0,
        start_time=10.0,
    )

    def on_transmission(event) -> None:
        for node in nodes.values():
            node.sense_event(event)

    tracker = TargetTracker(
        trajectory, period=SAMPLE_PERIOD, on_event=on_transmission
    )
    tracker.start(sim)
    sim.run()
    ch.flush()
    sim.run()

    print(f"Target tracking: {N_NODES} sensors ({COMPROMISED}% "
          f"compromised), target at speed {trajectory.speed:g}\n")

    rows = []
    located = 0
    errors = []
    for event in tracker.emitted:
        best = None
        for d in ch.decisions:
            if not d.occurred or d.location is None:
                continue
            if not event.time <= d.time < event.time + SAMPLE_PERIOD:
                continue
            err = d.location.distance_to(event.location)
            if best is None or err < best[0]:
                best = (err, d.location)
        if best is not None and best[0] <= 5.0:
            located += 1
            errors.append(best[0])
            rows.append(
                (f"{event.time:.0f}",
                 f"({event.location.x:5.1f},{event.location.y:5.1f})",
                 f"({best[1].x:5.1f},{best[1].y:5.1f})",
                 f"{best[0]:.2f}"))
        else:
            rows.append(
                (f"{event.time:.0f}",
                 f"({event.location.x:5.1f},{event.location.y:5.1f})",
                 "lost", "-"))
    print(render_table(
        ["t", "true position", "estimated", "error"], rows
    ))

    total = len(tracker.emitted)
    print(f"\nTrack samples located: {located}/{total} "
          f"({located / total:.0%}); mean error "
          f"{sum(errors) / len(errors):.2f} units")
    print("The trust index keeps the track locked even though a third "
          "of the field lies.")


if __name__ == "__main__":
    main()
