"""Unit tests for the mobility model and CH position tracking."""

import numpy as np
import pytest

from repro.network.geometry import Point, Region
from repro.network.mobility import (
    MobilityConfig,
    PositionTracker,
    RandomWaypointMobility,
)
from repro.network.topology import grid_deployment
from repro.simkernel.simulator import Simulator


def build(n=9, seed=1, **config_kwargs):
    sim = Simulator(seed=seed)
    region = Region.square(60.0)
    deployment = grid_deployment(n, region)
    mobility = RandomWaypointMobility(
        deployment,
        region,
        MobilityConfig(**config_kwargs),
        sim.streams.get("mobility"),
    )
    return sim, region, deployment, mobility


class TestRandomWaypoint:
    def test_nodes_move_over_time(self):
        sim, _region, deployment, mobility = build()
        initial = {
            n: deployment.position_of(n) for n in deployment.node_ids()
        }
        mobility.start(sim)
        sim.run(until=30.0)
        moved = mobility.displacement_since_start(initial)
        assert sum(1 for d in moved.values() if d > 1.0) >= 7

    def test_positions_stay_inside_region(self):
        sim, region, deployment, mobility = build(speed_min=2.0,
                                                  speed_max=5.0)
        mobility.start(sim)
        sim.run(until=50.0)
        for node_id in deployment.node_ids():
            assert region.contains(deployment.position_of(node_id))

    def test_speed_bounds_respected_per_tick(self):
        sim, _region, deployment, mobility = build(
            speed_min=1.0, speed_max=2.0, tick=1.0
        )
        mobility.start(sim)
        previous = {
            n: deployment.position_of(n) for n in deployment.node_ids()
        }
        sim.run(until=1.0)
        for node_id in deployment.node_ids():
            step = previous[node_id].distance_to(
                deployment.position_of(node_id)
            )
            assert step <= 2.0 + 1e-9

    def test_pause_time_freezes_nodes_at_waypoints(self):
        # Very fast nodes with long pauses spend most time parked.
        sim, _region, deployment, mobility = build(
            speed_min=50.0, speed_max=60.0, pause_time=1000.0
        )
        mobility.start(sim)
        sim.run(until=5.0)
        frozen = {
            n: deployment.position_of(n) for n in deployment.node_ids()
        }
        sim.run(until=10.0)
        for node_id in deployment.node_ids():
            assert (
                frozen[node_id].distance_to(
                    deployment.position_of(node_id)
                )
                < 1e-9
            )

    def test_determinism(self):
        def run_once():
            sim, _r, deployment, mobility = build(seed=5)
            mobility.start(sim)
            sim.run(until=20.0)
            return {
                n: deployment.position_of(n).as_tuple()
                for n in deployment.node_ids()
            }

        assert run_once() == run_once()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MobilityConfig(speed_min=0.0)
        with pytest.raises(ValueError):
            MobilityConfig(speed_min=2.0, speed_max=1.0)
        with pytest.raises(ValueError):
            MobilityConfig(pause_time=-1.0)
        with pytest.raises(ValueError):
            MobilityConfig(tick=0.0)


class TestPositionTracker:
    def test_live_mode_always_sees_truth(self):
        sim, _region, deployment, mobility = build()
        tracker = PositionTracker(deployment, refresh_interval=None)
        mobility.start(sim)
        tracker.start(sim)
        sim.run(until=20.0)
        assert tracker.view is deployment
        assert max(tracker.staleness().values()) == 0.0

    def test_snapshot_mode_goes_stale_between_refreshes(self):
        sim, _region, deployment, mobility = build(
            speed_min=2.0, speed_max=3.0
        )
        tracker = PositionTracker(deployment, refresh_interval=1000.0)
        mobility.start(sim)
        tracker.start(sim)
        sim.run(until=30.0)
        assert max(tracker.staleness().values()) > 5.0

    def test_refresh_clears_staleness(self):
        sim, _region, deployment, mobility = build(
            speed_min=2.0, speed_max=3.0
        )
        tracker = PositionTracker(deployment, refresh_interval=1000.0)
        mobility.start(sim)
        sim.run(until=30.0)
        tracker.refresh()
        assert max(tracker.staleness().values()) == 0.0
        assert tracker.refreshes == 1

    def test_periodic_refresh_bounds_staleness(self):
        sim, _region, deployment, mobility = build(
            speed_min=1.0, speed_max=1.0
        )
        tracker = PositionTracker(deployment, refresh_interval=2.0)
        mobility.start(sim)
        tracker.start(sim)
        sim.run(until=40.0)
        # At speed 1 and refresh every 2, drift is at most ~2 units.
        assert max(tracker.staleness().values()) <= 2.0 + 1e-6

    def test_invalid_refresh_rejected(self):
        _sim, _region, deployment, _mobility = build()
        with pytest.raises(ValueError):
            PositionTracker(deployment, refresh_interval=0.0)
