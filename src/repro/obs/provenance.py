"""Decision provenance: walk span lineage back to root causes.

:mod:`repro.obs.spans` records *what happened* as a forest of causally
linked point spans; this module answers *why*.  A
:class:`ProvenanceIndex` ingests the span records of one run and, for
any ``ch.decision`` span, reconstructs the complete evidence chain:

* the sensed (or quiet-window) ``event`` at the root,
* each node's ``report`` and its ``radio.transmit`` / ``radio.deliver``
  hops -- including reports that never arrived (``radio.drop``, with
  the drop reason and any ``chaos.intercept`` that caused it),
* the collection window (``window.open`` / ``window.report`` /
  ``window.close``), the plausibility gate (``window.filter``) and the
  event cluster (``window.cluster``),
* the CTI vote (``trust.vote`` with per-supporter CTI contributions)
  and the resulting TI transitions (``trust.reward`` /
  ``trust.penalize``),
* the verdict's fallout: ``ch.diagnosis`` spans and the announcement
  broadcast.

The index is pure read-side tooling: it consumes ``spans.jsonl``
records (or a live :class:`~repro.obs.spans.SpanCollector`) and holds
no simulation state.  ``tibfit-repro explain`` renders its output.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["ProvenanceIndex"]

#: Categories that tie a span to one or more node ids through ``nodes``
#: list args (trust transitions) -- used by :meth:`ProvenanceIndex.node_view`.
_NODE_LIST_CATEGORIES = ("trust.penalize", "trust.reward")


def _normalise(record) -> Dict[str, object]:
    """Accept either a span record dict or a Span object."""
    if isinstance(record, dict):
        return record
    return {
        "id": record.span_id,
        "parent": record.parent_id,
        "category": record.category,
        "time": record.time,
        "args": dict(record.args),
    }


class ProvenanceIndex:
    """Lineage queries over one run's span records.

    Parameters
    ----------
    records:
        Span records -- the dicts of
        :meth:`repro.obs.spans.SpanCollector.to_records` (typically read
        back from ``spans.jsonl``), or a live collector / iterable of
        :class:`~repro.obs.spans.Span` objects.

    Notes
    -----
    The ring buffer may have evicted the oldest spans of a very long
    run; lineage walks stop cleanly at missing parents, and the manifest
    ``spans_evicted`` count says whether that can happen at all.
    """

    def __init__(self, records: Iterable) -> None:
        self.by_id: Dict[int, Dict[str, object]] = {}
        self.children: Dict[int, List[int]] = {}
        self._by_category: Dict[str, List[int]] = {}
        for raw in records:
            record = _normalise(raw)
            span_id = record["id"]
            self.by_id[span_id] = record
            self.children.setdefault(record["parent"], []).append(span_id)
            self._by_category.setdefault(record["category"], []).append(
                span_id
            )
        #: ``decision_id`` -> ``ch.decision`` span id.
        self.decisions: Dict[int, int] = {}
        for span_id in self._by_category.get("ch.decision", ()):
            args = self.by_id[span_id]["args"]
            self.decisions[args["decision_id"]] = span_id

    # ------------------------------------------------------------------
    # Generic walks
    # ------------------------------------------------------------------
    def span(self, span_id: int) -> Optional[Dict[str, object]]:
        """The span record for ``span_id`` (None when evicted/unknown)."""
        return self.by_id.get(span_id)

    def lineage(self, span_id: int) -> List[Dict[str, object]]:
        """The span and its ancestors, nearest first, up to the root.

        Stops at parent 0 (a root) or at a parent the ring buffer has
        evicted.  Cycles are impossible by construction (parents are
        always older spans), but the walk is bounded anyway.
        """
        chain: List[Dict[str, object]] = []
        seen = set()
        while span_id and span_id not in seen:
            seen.add(span_id)
            record = self.by_id.get(span_id)
            if record is None:
                break
            chain.append(record)
            span_id = record["parent"]
        return chain

    def descendants(
        self, span_id: int, categories: Optional[tuple] = None
    ) -> List[Dict[str, object]]:
        """Every span below ``span_id`` (optionally category-filtered)."""
        out: List[Dict[str, object]] = []
        stack = list(self.children.get(span_id, ()))
        while stack:
            child_id = stack.pop()
            record = self.by_id[child_id]
            if categories is None or record["category"] in categories:
                out.append(record)
            stack.extend(self.children.get(child_id, ()))
        out.sort(key=lambda r: r["id"])
        return out

    def _child_of(
        self, span_id: int, category: str
    ) -> Optional[Dict[str, object]]:
        for child_id in self.children.get(span_id, ()):
            record = self.by_id[child_id]
            if record["category"] == category:
                return record
        return None

    def _ancestor_of(
        self, span_id: int, category: str
    ) -> Optional[Dict[str, object]]:
        for record in self.lineage(span_id):
            if record["category"] == category:
                return record
        return None

    # ------------------------------------------------------------------
    # Decision provenance
    # ------------------------------------------------------------------
    def decision_ids(self) -> List[int]:
        """Every decision id with a ``ch.decision`` span, ascending."""
        return sorted(self.decisions)

    def decision_provenance(self, decision_id: int) -> Dict[str, object]:
        """The full evidence chain behind one CH verdict.

        Raises ``KeyError`` when ``decision_id`` has no ``ch.decision``
        span (never announced, or evicted from the ring buffer).
        """
        span_id = self.decisions.get(decision_id)
        if span_id is None:
            raise KeyError(
                f"no ch.decision span for decision_id={decision_id}"
            )
        decision = self.by_id[span_id]
        args = decision["args"]

        cluster = self._ancestor_of(span_id, "window.cluster")
        filter_span = self._ancestor_of(span_id, "window.filter")
        close = self._ancestor_of(span_id, "window.close")

        # The vote funnels through CtiVoter under the cluster span
        # (location mode) or the window.close span (binary mode).
        vote = None
        for anchor in (cluster, close):
            if anchor is not None:
                vote = self._child_of(anchor["id"], "trust.vote")
                if vote is not None:
                    break

        rewarded = penalized = None
        if vote is not None:
            rewarded = self._child_of(vote["id"], "trust.reward")
            penalized = self._child_of(vote["id"], "trust.penalize")
        gate_penalized = (
            self._child_of(filter_span["id"], "trust.penalize")
            if filter_span is not None
            else None
        )

        reports = self._window_reports(close, cluster)
        evidence = [self._report_evidence(r) for r in reports]
        dropped = self._dropped_reports(evidence)

        diagnoses = [
            {
                "node": d["args"]["node"],
                "ti": d["args"]["ti"],
                "span": d["id"],
            }
            for d in self.descendants(span_id, ("ch.diagnosis",))
        ]
        announced = self.descendants(span_id, ("radio.transmit",))
        # At-send drops parent straight under the decision (no transmit
        # span exists); died-in-flight drops sit under their transmit.
        # Both are descendants of the decision span.
        announce_dropped = len(self.descendants(span_id, ("radio.drop",)))

        return {
            "type": "decision",
            "decision_id": decision_id,
            "span": span_id,
            "time": decision["time"],
            "occurred": args["occurred"],
            "location": (
                None
                if args.get("x") is None
                else [args["x"], args["y"]]
            ),
            "supporters": list(args["supporters"]),
            "dissenters": list(args["dissenters"]),
            "cluster": None if cluster is None else {
                "span": cluster["id"],
                "x": cluster["args"]["x"],
                "y": cluster["args"]["y"],
                "members": list(cluster["args"]["members"]),
                "dissenters": list(cluster["args"]["dissenters"]),
            },
            "window": None if close is None else {
                "close_span": close["id"],
                "time": close["time"],
                "reports": close["args"].get("reports"),
                "circles": list(close["args"].get("circles", ())),
                "filter": None if filter_span is None else {
                    "span": filter_span["id"],
                    "kept": list(filter_span["args"]["kept"]),
                    "gated": list(filter_span["args"]["gated"]),
                },
            },
            "evidence": evidence,
            "dropped_reports": dropped,
            "vote": None if vote is None else {
                "span": vote["id"],
                "occurred": vote["args"]["occurred"],
                "tie": vote["args"]["tie"],
                "cti_r": vote["args"]["cti_r"],
                "cti_nr": vote["args"]["cti_nr"],
                "reporters": list(vote["args"]["reporters"]),
                "non_reporters": list(vote["args"]["non_reporters"]),
                "ti_r": list(vote["args"]["ti_r"]),
                "ti_nr": list(vote["args"]["ti_nr"]),
                "applied": vote["args"]["applied"],
            },
            "trust": {
                "rewarded": self._transition(rewarded),
                "penalized": self._transition(penalized),
                "gate_penalized": self._transition(gate_penalized),
            },
            "diagnoses": diagnoses,
            "announcement": (
                None
                if not announced and not announce_dropped
                else {
                    "transmits": len(announced),
                    "dropped": announce_dropped,
                }
            ),
        }

    def to_records(self) -> Iterator[Dict[str, object]]:
        """One provenance record per decision (``provenance.jsonl``)."""
        for decision_id in self.decision_ids():
            yield self.decision_provenance(decision_id)

    # ------------------------------------------------------------------
    # Node view
    # ------------------------------------------------------------------
    def node_view(self, node_id: int) -> List[Dict[str, object]]:
        """Every span that names ``node_id``, in emission order.

        Covers the node's own reports, window joins, trust transitions
        (with the post-transition TI), gate filterings, and diagnoses
        -- the raw material for "why was node N diagnosed?".
        """
        hits: List[Dict[str, object]] = []
        for record in self.by_id.values():
            args = record["args"]
            category = record["category"]
            if category in ("report", "window.report", "ch.diagnosis"):
                if args.get("node") == node_id:
                    hits.append(record)
            elif category in _NODE_LIST_CATEGORIES:
                if node_id in args.get("nodes", ()):
                    hits.append(record)
            elif category == "window.filter":
                if node_id in args.get("gated", ()):
                    hits.append(record)
            elif category == "window.cluster":
                if node_id in args.get("members", ()) or node_id in args.get(
                    "dissenters", ()
                ):
                    hits.append(record)
            elif category == "ch.decision":
                if node_id in args.get("supporters", ()) or node_id in (
                    args.get("dissenters", ())
                ):
                    hits.append(record)
        hits.sort(key=lambda r: r["id"])
        return hits

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _transition(record) -> Optional[Dict[str, object]]:
        if record is None:
            return None
        return {
            "span": record["id"],
            "nodes": list(record["args"]["nodes"]),
            "ti": list(record["args"]["ti"]),
        }

    def _window_reports(self, close, cluster) -> List[Dict[str, object]]:
        """The ``window.report`` spans of one closed collection window.

        Location mode: the close span lists its merged circle ids and
        every report span carries its circle id (unique per run), so
        membership is a direct match.  Binary mode reuses circle -1 for
        every window, so reports are scoped to the window's open/close
        interval instead.
        """
        if close is None:
            return []
        circles = set(close["args"].get("circles", ()))
        reports = [
            self.by_id[i]
            for i in self._by_category.get("window.report", ())
        ]
        if circles == {-1}:
            open_span = self._ancestor_of(close["id"], "window.open")
            start = open_span["time"] if open_span is not None else 0.0
            return [
                r
                for r in reports
                if r["args"].get("circle") == -1
                and start <= r["time"] <= close["time"]
            ]
        return [r for r in reports if r["args"].get("circle") in circles]

    def _report_evidence(self, window_report) -> Dict[str, object]:
        """One window row traced back to its origin event."""
        deliver = self._ancestor_of(window_report["id"], "radio.deliver")
        transmit = self._ancestor_of(window_report["id"], "radio.transmit")
        origin = self._ancestor_of(window_report["id"], "report")
        event = self._ancestor_of(window_report["id"], "event")
        return {
            "node": window_report["args"].get("node"),
            "window_report_span": window_report["id"],
            "deliver_span": None if deliver is None else deliver["id"],
            "transmit_span": None if transmit is None else transmit["id"],
            "report_span": None if origin is None else origin["id"],
            "message_id": (
                None if origin is None
                else origin["args"].get("message_id")
            ),
            "event_id": (
                None if event is None else event["args"].get("event_id")
            ),
            "quiet": (
                False if event is None
                else bool(event["args"].get("quiet", False))
            ),
        }

    def _hop_drops(self, report_id: int) -> List[Dict[str, object]]:
        """The radio-hop drops of one report span.

        At-send drops are direct ``radio.drop`` children of the report;
        died-in-flight drops sit one level deeper, under the report's
        ``radio.transmit``.  Depth is deliberately bounded to those two
        shapes: an unbounded descendant walk would also sweep up drops
        of the *announcement* broadcast, which nests below the decision
        and therefore below this report's causal chain.
        """
        out: List[Dict[str, object]] = []
        for child_id in self.children.get(report_id, ()):
            child = self.by_id[child_id]
            if child["category"] == "radio.drop":
                out.append(child)
            elif child["category"] == "radio.transmit":
                for grand_id in self.children.get(child_id, ()):
                    grand = self.by_id[grand_id]
                    if grand["category"] == "radio.drop":
                        out.append(grand)
        out.sort(key=lambda r: r["id"])
        return out

    def _dropped_reports(self, evidence) -> List[Dict[str, object]]:
        """Sibling reports of this window's events that never arrived.

        For every root event feeding the window, find its ``report``
        children whose radio hop ended in a ``radio.drop`` -- the
        "expected but missing" half of the explanation.
        """
        event_spans = set()
        for item in evidence:
            if item["report_span"] is not None:
                origin = self.by_id.get(item["report_span"])
                if origin is not None and origin["parent"]:
                    event_spans.add(origin["parent"])
        dropped: List[Dict[str, object]] = []
        for event_span in sorted(event_spans):
            for report in self.descendants(event_span, ("report",)):
                for drop in self._hop_drops(report["id"]):
                    dropped.append(
                        {
                            "node": report["args"].get("node"),
                            "message_id": report["args"].get("message_id"),
                            "reason": drop["args"].get("reason"),
                            "drop_span": drop["id"],
                            "report_span": report["id"],
                        }
                    )
        return dropped
