"""Figure 2: binary-event accuracy vs. %faulty, missed alarms only.

Paper shape: the network sustains over 85% accuracy through 70% of its
nodes compromised; accuracy collapses toward the 90% mark.  Three
curves for correct-node NER of 0%, 1%, and 5%.
"""

from repro.experiments.config import Experiment1Config
from repro.experiments.experiment1 import figure2_data
from benchmarks._shared import print_figure, run_once

CONFIG = Experiment1Config(trials=3, seed=2005)


def test_figure2_missed_alarms(benchmark):
    data = run_once(benchmark, lambda: figure2_data(CONFIG))
    print_figure(
        "Figure 2: Experiment 1 accuracy vs %faulty (missed alarms only)",
        data,
        x_label="% faulty",
    )

    for label, series in data.items():
        at = {p.x: p.mean for p in series.points}
        # Over 85% accuracy with 70% of the network compromised.
        assert at[70.0] > 0.85, label
        # Low-compromise regime is essentially perfect.
        assert at[40.0] > 0.95, label
        # The cliff: 90% compromised loses at least 25 points vs 70%.
        assert at[70.0] - at[90.0] > 0.25, label

    # Higher NER can only hurt (curves ordered at the high end).
    ner0 = {p.x: p.mean for p in data["NER 0% FA 0% TIBFIT"].points}
    ner5 = {p.x: p.mean for p in data["NER 5% FA 0% TIBFIT"].points}
    assert ner0[80.0] >= ner5[80.0] - 0.05
