"""Tests for the rotating-network extension sweep (experiment 4)."""

import pytest

from repro.experiments.experiment4 import (
    Experiment4Config,
    rotating_sweep,
    run_point,
)

TINY = Experiment4Config(
    n_nodes=25,
    field_side=50.0,
    events_per_leadership=4,
    leadership_rounds=2,
    percent_faulty_values=(20.0, 44.0),
    trials=1,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Experiment4Config(trials=0)
        with pytest.raises(ValueError):
            Experiment4Config(leadership_rounds=0)


class TestSweep:
    def test_run_point_returns_probability(self):
        acc = run_point(TINY, 20.0, trial=0, use_trust=True,
                        transfer_trust=True)
        assert 0.0 <= acc <= 1.0

    def test_run_point_deterministic(self):
        a = run_point(TINY, 20.0, 0, True, True)
        b = run_point(TINY, 20.0, 0, True, True)
        assert a == b

    def test_sweep_produces_three_variants(self):
        data = rotating_sweep(TINY)
        assert set(data) == {
            "Rotating TIBFIT",
            "Rotating Amnesia",
            "Rotating Baseline",
        }
        for series in data.values():
            assert [p.x for p in series.points] == [20.0, 44.0]

    def test_import_path_is_cycle_free(self):
        """Importing the package then the module must not blow up."""
        import repro.experiments
        import repro.clusterctl
        from repro.experiments import experiment4

        assert hasattr(experiment4, "rotating_sweep")
