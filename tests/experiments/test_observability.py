"""End-to-end acceptance tests for the observability layer.

The load-bearing guarantees:

* an instrumented (``observe=True``) run is **bit-identical** to an
  uninstrumented one -- probes read state, never mutate it;
* the exported JSONL artifacts reconstruct the run's trust state
  exactly: final TIs match the live :class:`TrustTable` bit for bit,
  and each diagnosed node's threshold-crossing time in the TI series
  equals its diagnosis time;
* span collection (``spans=True``) is equally read-only: the
  ``run_fingerprint`` of a span-collecting run equals the plain run's
  under both scheduler backends and both decision backends, and the
  exported span artifacts reconstruct every verdict's causal chain.
"""

import json

import pytest

from repro.chaos.invariants import run_fingerprint
from repro.core.decision_kernel import DECISION_ENV
from repro.experiments.harness import CorrectSpec, FaultSpec, SimulationRun
from repro.obs.export import read_jsonl, validate_artifacts
from repro.obs.provenance import ProvenanceIndex
from repro.simkernel.calqueue import QUEUE_ENV

DIAGNOSIS_THRESHOLD = 0.5


def make_run(observe, seed=7, spans=False):
    """An Experiment-1-style binary run with aggressive faulty nodes."""
    return SimulationRun(
        mode="binary",
        n_nodes=10,
        field_side=32.0,
        deployment_kind="grid",
        sensing_radius=64.0,  # everyone neighbours every event
        faulty_ids=(2, 3, 7),
        correct_spec=CorrectSpec(sigma=0.0, miss_rate=0.01),
        fault_spec=FaultSpec(level=0, drop_rate=0.5, false_alarm_rate=0.1),
        channel_loss=0.0,
        diagnosis_threshold=DIAGNOSIS_THRESHOLD,
        seed=seed,
        observe=observe,
        spans=spans,
    )


@pytest.fixture(scope="module")
def observed(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifacts")
    run = make_run(observe=True)
    run.run(30)
    run.export_artifacts(out)
    return run, out


class TestBitIdentity:
    def test_observed_run_matches_unobserved(self, observed):
        run, _ = observed
        plain = make_run(observe=False)
        plain.run(30)
        assert plain.trust_snapshot() == run.trust_snapshot()
        assert [d.occurred for d in plain.ch.decisions] == [
            d.occurred for d in run.ch.decisions
        ]
        assert plain.metrics().accuracy == run.metrics().accuracy


class TestArtifacts:
    def test_directory_validates(self, observed):
        _, out = observed
        counts = validate_artifacts(out)
        assert set(counts) == {
            "manifest.json", "metrics.jsonl", "ti_series.jsonl",
            "trace.jsonl",
        }

    def test_manifest_counts_match_artifacts(self, observed):
        run, out = observed
        manifest = json.loads((out / "manifest.json").read_text())
        samples = [
            r for r in read_jsonl(out / "ti_series.jsonl")
            if r["type"] == "sample"
        ]
        assert manifest["counts"]["probe_samples"] == len(samples)
        assert manifest["counts"]["events"] == 30
        assert manifest["counts"]["decisions"] == len(run.ch.decisions)
        assert manifest["config"]["diagnosis_threshold"] == (
            DIAGNOSIS_THRESHOLD
        )
        assert manifest["seed"] == 7
        assert manifest["timings"]["run_s"] > 0.0

    def test_final_tis_reconstruct_bit_identical(self, observed):
        run, out = observed
        samples = [
            r for r in read_jsonl(out / "ti_series.jsonl")
            if r["type"] == "sample"
        ]
        final = {int(k): v for k, v in samples[-1]["tis"].items()}
        # == on floats: bit-identical, not approximately equal
        assert final == run.ch.trust.tis()

    def test_crossing_times_match_diagnoses(self, observed):
        run, out = observed
        records = read_jsonl(out / "ti_series.jsonl")
        samples = [r for r in records if r["type"] == "sample"]
        diagnoses = [r for r in records if r["type"] == "diagnosis"]
        assert diagnoses, "run must diagnose at least one faulty node"
        assert {d["node"] for d in diagnoses} <= set(run.initial_faulty)
        for diag in diagnoses:
            node = str(diag["node"])
            crossing = next(
                s["time"] for s in samples
                if s["tis"].get(node, 1.0) < DIAGNOSIS_THRESHOLD
            )
            assert crossing == diag["time"]
            assert diag["ti"] < DIAGNOSIS_THRESHOLD
            assert diag["isolated"] is True

    def test_metrics_jsonl_cross_checks_channel(self, observed):
        run, out = observed
        by_name = {
            r["name"]: r for r in read_jsonl(out / "metrics.jsonl")
        }
        assert by_name["radio.sent"]["value"] == run.channel.sent
        assert by_name["radio.delivered"]["value"] == run.channel.delivered
        assert by_name["trust.votes"]["value"] == run.ch.voter.votes_taken
        decisions = (
            by_name["ch.decision.occurred"]["value"]
            + by_name["ch.decision.rejected"]["value"]
        )
        assert decisions == len(run.ch.decisions)
        assert by_name["ch.diagnosis"]["value"] == len(
            run.ch.diagnoser.diagnosed
        )
        assert by_name["trust.vote.wall"]["type"] == "timer"
        assert by_name["trust.vote.margin"]["count"] == (
            run.ch.voter.votes_taken
        )
        assert by_name["des.events_fired"]["value"] == float(
            run.sim.events_fired
        )

    def test_trace_jsonl_holds_decision_events(self, observed):
        run, out = observed
        categories = {
            r["category"] for r in read_jsonl(out / "trace.jsonl")
        }
        assert "ch.decision" in categories
        assert "ch.diagnosis" in categories


class TestExportGuards:
    def test_export_requires_observe(self, tmp_path):
        run = make_run(observe=False)
        run.run(2)
        with pytest.raises(RuntimeError, match="observe=True"):
            run.export_artifacts(tmp_path)

    def test_probe_absent_when_not_observing(self):
        run = make_run(observe=False)
        run.build()
        assert run.probe is None
        assert not run.registry.enabled
        assert run.ch.probe is None


# ----------------------------------------------------------------------
# Span collection
# ----------------------------------------------------------------------
def make_location_run(spans, seed=77, observe=False):
    return SimulationRun(
        mode="location",
        n_nodes=25,
        field_side=50.0,
        sensing_radius=20.0,
        faulty_ids=(0, 1, 2),
        diagnosis_threshold=0.3,
        seed=seed,
        observe=observe,
        spans=spans,
    )


class TestSpanBitIdentity:
    """Acceptance: spans-enabled runs are bit-identical to plain runs
    under both scheduler backends AND both decision backends."""

    @pytest.mark.parametrize("queue_backend", ["heap", "calendar"])
    @pytest.mark.parametrize("decision_backend", ["array", "object"])
    def test_location_fingerprint_unchanged(
        self, monkeypatch, queue_backend, decision_backend
    ):
        monkeypatch.setenv(QUEUE_ENV, queue_backend)
        monkeypatch.setenv(DECISION_ENV, decision_backend)
        plain = make_location_run(spans=False)
        plain.run(8)
        spanned = make_location_run(spans=True)
        spanned.run(8)
        assert run_fingerprint(spanned) == run_fingerprint(plain)
        assert spanned.spans.emitted > 0

    def test_binary_fingerprint_unchanged(self):
        plain = make_run(observe=False)
        plain.run(20)
        spanned = make_run(observe=False, spans=True)
        spanned.run(20)
        assert run_fingerprint(spanned) == run_fingerprint(plain)
        assert spanned.spans.emitted > 0


class TestSpanArtifacts:
    @pytest.fixture(scope="class")
    def span_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("span_artifacts")
        run = make_location_run(spans=True, observe=True)
        run.run(10)
        run.export_artifacts(out)
        return run, out

    def test_span_artifacts_validate(self, span_run):
        _, out = span_run
        counts = validate_artifacts(out)
        assert counts["spans.jsonl"] > 0
        assert counts["provenance.jsonl"] > 0
        assert counts["spans_chrome.json"] > 0

    def test_manifest_counts_spans(self, span_run):
        run, out = span_run
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["counts"]["spans_emitted"] == run.spans.emitted
        assert manifest["counts"]["spans_evicted"] == run.spans.evicted

    def test_provenance_reconstructs_every_decision(self, span_run):
        run, out = span_run
        prov = ProvenanceIndex(read_jsonl(out / "spans.jsonl"))
        assert len(prov.decision_ids()) == len(run.ch.decisions)
        for decision_id in prov.decision_ids():
            record = prov.decision_provenance(decision_id)
            # Every verdict explains itself: a window, a vote (or a
            # self-refuting cluster), and per-report evidence chains
            # that reach back to a sensed event.
            assert record["window"] is not None
            assert record["evidence"], "no evidence hops reconstructed"
            for item in record["evidence"]:
                assert item["event_id"] is not None
        diagnosed = {
            d["node"]
            for r in prov.to_records()
            for d in r["diagnoses"]
        }
        assert diagnosed == set(run.ch.diagnoser.diagnosed)

    def test_explain_cli_renders_chain(self, span_run, capsys):
        from repro.cli import main

        _, out = span_run
        assert main(["explain", str(out)]) == 0
        listing = capsys.readouterr().out
        assert "decision" in listing
        prov = ProvenanceIndex(read_jsonl(out / "spans.jsonl"))
        decision_id = prov.decision_ids()[0]
        assert main(
            ["explain", str(out), "--decision", str(decision_id)]
        ) == 0
        rendered = capsys.readouterr().out
        assert "supporters" in rendered
        assert "evidence" in rendered

    def test_explain_cli_node_view(self, span_run, capsys):
        from repro.cli import main

        run, out = span_run
        node = run.initial_faulty[0]
        assert main(["explain", str(out), "--node", str(node)]) == 0
        assert "node" in capsys.readouterr().out

    def test_explain_cli_missing_spans_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["explain", str(tmp_path)]) == 2
        assert "spans.jsonl" in capsys.readouterr().err
