"""Unit tests for TI-threshold diagnosis and isolation."""

import pytest

from repro.core.diagnosis import FaultDiagnoser
from repro.core.trust import TrustParameters, TrustTable


def table_with_liar(lam=1.0, fr=0.1, n=5, liar=0, penalties=2):
    table = TrustTable(TrustParameters(lam=lam, fault_rate=fr),
                       node_ids=range(n))
    for _ in range(penalties):
        table.penalize(liar)
    return table


class TestDiagnosis:
    def test_distrusted_node_is_diagnosed(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        fresh = diag.sweep(now=10.0)
        assert [e.node_id for e in fresh] == [0]
        assert diag.diagnosed == (0,)
        assert fresh[0].time == 10.0
        assert fresh[0].ti_at_diagnosis < 0.5

    def test_sweep_reports_each_node_once(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        assert len(diag.sweep()) == 1
        assert diag.sweep() == []  # already known

    def test_trusted_nodes_not_diagnosed(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        diag.sweep()
        assert 1 not in diag.diagnosed

    def test_isolation_callback_fires(self):
        table = table_with_liar()
        isolated = []
        diag = FaultDiagnoser(
            table, ti_threshold=0.5, on_isolate=isolated.append
        )
        diag.sweep()
        assert isolated == [0]

    def test_isolation_disabled_keeps_exclusion_empty(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5, isolate=False)
        diag.sweep()
        assert diag.diagnosed == (0,)
        assert diag.excluded_nodes() == ()

    def test_pardon_reopens_diagnosis(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        diag.sweep()
        diag.pardon(0)
        assert diag.diagnosed == ()
        assert len(diag.sweep()) == 1  # re-diagnosed on next sweep

    def test_threshold_validation(self):
        table = table_with_liar()
        with pytest.raises(ValueError):
            FaultDiagnoser(table, ti_threshold=1.0)


class TestQualityMetrics:
    def test_recall_against_ground_truth(self):
        table = table_with_liar(n=6)
        table.penalize(1)
        table.penalize(1)
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        diag.sweep()
        assert diag.recall({0, 1}) == 1.0
        assert diag.recall({0, 1, 2}) == pytest.approx(2 / 3)
        assert diag.recall(set()) == 1.0

    def test_false_positive_count(self):
        table = table_with_liar()
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        diag.sweep()
        assert diag.false_positive_count({0}) == 0
        assert diag.false_positive_count({9}) == 1

    def test_log_accumulates_entries(self):
        table = table_with_liar(n=4)
        table.penalize(3)
        table.penalize(3)
        diag = FaultDiagnoser(table, ti_threshold=0.5)
        diag.sweep(now=1.0)
        assert len(diag.log) == 2
        assert {e.node_id for e in diag.log} == {0, 3}
