"""TI time-series probes: per-node trust trajectories over a run.

TIBFIT's behaviour *is* the evolution of each node's trust index -- how
fast liars decay, when diagnosis crosses the threshold, how much CTI
margin the honest majority keeps.  :class:`TrustProbe` records exactly
that: it snapshots a trust table's TI map at decision boundaries and
exposes the result as per-node trajectory arrays, JSONL records, and
threshold-crossing queries.

Sampling is **batch-API compatible**: the probe reads the flat-array
table's derived TI state (:meth:`TrustTable.tis`), which never forces a
buffered-counter flush, and it samples once per CH decision rather than
once per trust update -- so an instrumented run observes the same table
the uninstrumented run produces, bit for bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["TrustProbe"]


class TrustProbe:
    """Samples a trust table's TI map into per-node time series.

    Parameters
    ----------
    table:
        Any object with the trust-table query API (``tis()``; optionally
        ``code_table_size()``).  Both :class:`~repro.core.trust.TrustTable`
        and the dict reference oracle qualify.
    registry:
        Optional metrics registry; each sample updates the
        ``trust.code_table_size`` gauge and the ``probe.samples``
        counter when enabled.
    diagnoser:
        Optional :class:`~repro.core.diagnosis.FaultDiagnoser`; its log
        is folded into :meth:`to_records` as ``diagnosis`` entries.
    """

    def __init__(
        self,
        table,
        registry: MetricsRegistry = NULL_REGISTRY,
        diagnoser=None,
    ) -> None:
        self.table = table
        self.registry = registry
        self.diagnoser = diagnoser
        self._times: List[float] = []
        self._snapshots: List[Dict[int, float]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sample(self, time: float) -> None:
        """Record the table's current TI map at simulation ``time``."""
        self._times.append(float(time))
        self._snapshots.append(self.table.tis())
        registry = self.registry
        if registry.enabled:
            registry.counter("probe.samples").inc()
            size = getattr(self.table, "code_table_size", None)
            if size is not None:
                registry.gauge("trust.code_table_size").set(size())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self._times)

    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times, dtype=np.float64)

    def node_ids(self) -> Tuple[int, ...]:
        """Every node id seen in any sample, sorted."""
        ids: set = set()
        for snap in self._snapshots:
            ids.update(snap)
        return tuple(sorted(ids))

    def trajectory(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, tis)`` arrays for one node.

        Nodes registered mid-run report ``TI = 1.0`` for samples taken
        before their first appearance (a never-seen node is fully
        trusted, matching ``TrustTable.ti``).
        """
        times = self.times()
        tis = np.asarray(
            [snap.get(node_id, 1.0) for snap in self._snapshots],
            dtype=np.float64,
        )
        return times, tis

    def final_tis(self) -> Dict[int, float]:
        """The last sample's TI map (empty when never sampled)."""
        if not self._snapshots:
            return {}
        return dict(self._snapshots[-1])

    def crossing_time(
        self, node_id: int, ti_threshold: float
    ) -> Optional[float]:
        """First sample time at which the node's TI sat strictly below
        ``ti_threshold`` (the diagnosis convention), or None.
        """
        for time, snap in zip(self._times, self._snapshots):
            if snap.get(node_id, 1.0) < ti_threshold:
                return time
        return None

    def diagnosis_times(self) -> Dict[int, float]:
        """``{node_id: diagnosis time}`` from the attached diagnoser."""
        if self.diagnoser is None:
            return {}
        return {entry.node_id: entry.time for entry in self.diagnoser.log}

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_records(self) -> Iterator[Dict[str, object]]:
        """JSONL records: one ``sample`` per snapshot, then ``diagnosis``
        entries from the attached diagnoser.

        TI values round-trip bit-identically through JSON (``json``
        serialises floats via ``repr``), so the final sample
        reconstructs the table's exact end state.
        """
        for time, snap in zip(self._times, self._snapshots):
            yield {
                "type": "sample",
                "time": time,
                "tis": {str(node): ti for node, ti in sorted(snap.items())},
            }
        if self.diagnoser is not None:
            for entry in self.diagnoser.log:
                yield {
                    "type": "diagnosis",
                    "time": entry.time,
                    "node": entry.node_id,
                    "ti": entry.ti_at_diagnosis,
                    "isolated": entry.isolated,
                }

    def __repr__(self) -> str:
        return (
            f"TrustProbe(samples={self.n_samples}, "
            f"nodes={len(self.node_ids())})"
        )
