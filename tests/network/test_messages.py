"""Unit tests for typed message payloads."""

import math

import pytest

from repro.network.geometry import Point, PolarOffset
from repro.network.messages import (
    ChAdvertisement,
    ChDecisionAnnouncement,
    EventReportMessage,
    ScHDisagreement,
    TiTableTransfer,
)


class TestEventReport:
    def test_resolve_location_displaces_from_node(self):
        report = EventReportMessage(
            sender=1, offset=PolarOffset(r=5.0, theta=0.0)
        )
        loc = report.resolve_location(Point(10.0, 10.0))
        assert loc.x == pytest.approx(15.0)
        assert loc.y == pytest.approx(10.0)

    def test_resolve_location_none_for_binary_report(self):
        report = EventReportMessage(sender=1, offset=None)
        assert report.resolve_location(Point(0.0, 0.0)) is None

    def test_resolve_location_with_bearing(self):
        report = EventReportMessage(
            sender=1, offset=PolarOffset(r=2.0, theta=math.pi / 2)
        )
        loc = report.resolve_location(Point(0.0, 0.0))
        assert loc.x == pytest.approx(0.0, abs=1e-12)
        assert loc.y == pytest.approx(2.0)

    def test_reports_are_frozen(self):
        report = EventReportMessage(sender=1)
        with pytest.raises(Exception):
            report.sender = 2


class TestOtherMessages:
    def test_decision_announcement_carries_partitions(self):
        msg = ChDecisionAnnouncement(
            sender=100,
            decision_id=3,
            occurred=True,
            reporters=(1, 2),
            non_reporters=(3,),
        )
        assert 1 in msg.reporters
        assert 3 in msg.non_reporters

    def test_ti_table_transfer_defaults_empty(self):
        msg = TiTableTransfer(sender=100)
        assert msg.table == {}

    def test_advertisement_defaults(self):
        msg = ChAdvertisement(sender=5)
        assert msg.round_number == 0
        assert msg.signal_strength == 1.0

    def test_disagreement_identifies_suspect(self):
        msg = ScHDisagreement(sender=7, suspected_ch=100, decision_id=2)
        assert msg.suspected_ch == 100

    def test_message_ids_monotonically_increase(self):
        a = ChAdvertisement(sender=1)
        b = ChAdvertisement(sender=1)
        assert b.message_id > a.message_id
