"""Ablation: cluster-head rotation with and without the TI hand-off.

§2 requires an outgoing CH to ship its trust table to the base station
and a fresh CH to request it back.  This bench quantifies what that
hand-off is worth: the same rotating network is run with the transfer
enabled and with "amnesia" (every new CH starts from blank trust), and
compared against a static single-CH network as the upper bound.

Expected: amnesia discards the accumulated evidence against liars at
every rotation, so the registry's separation between honest and lying
nodes collapses toward zero while the transferring network keeps
widening it; detection accuracy under heavy compromise degrades
accordingly.
"""

import numpy as np

from repro.clusterctl.leach import LeachConfig
from repro.clusterctl.simulation import RotatingClusterSimulation
from repro.experiments.harness import CorrectSpec, FaultSpec
from repro.experiments.reporting import render_table
from benchmarks._shared import run_once

N_NODES = 100
FAULTY = 45
SEED = 3


def run_variant(transfer_trust: bool):
    rng = np.random.default_rng(SEED + 1)
    faulty = tuple(
        int(x) for x in rng.choice(N_NODES, size=FAULTY, replace=False)
    )
    sim = RotatingClusterSimulation(
        n_nodes=N_NODES,
        field_side=100.0,
        sensing_radius=20.0,
        r_error=5.0,
        correct_spec=CorrectSpec(sigma=1.6),
        fault_spec=FaultSpec(level=0, drop_rate=0.25, sigma=4.25),
        faulty_ids=faulty,
        leach=LeachConfig(ch_fraction=0.05, ti_threshold=0.5),
        events_per_leadership=8,
        channel_loss=0.0,
        transfer_trust=transfer_trust,
        seed=SEED,
    )
    sim.run(8)
    registry = sim.registry_snapshot()
    honest = [ti for n, ti in registry.items() if n not in faulty]
    lying = [ti for n, ti in registry.items() if n in faulty]
    separation = (
        sum(honest) / len(honest) - sum(lying) / len(lying)
        if honest and lying
        else 0.0
    )
    return {
        "accuracy": sim.metrics().accuracy,
        "trust_separation": separation,
        "rotations": sim.rotations,
        "distinct_leaders": len(sim.leadership_counts()),
    }


def test_ablation_rotation_trust_transfer(benchmark):
    def workload():
        return {
            "rotation + TI hand-off (paper)": run_variant(True),
            "rotation + amnesia": run_variant(False),
        }

    results = run_once(benchmark, workload)
    print()
    print(render_table(
        ["variant", "accuracy", "honest-vs-liar TI separation",
         "rotations", "distinct leaders"],
        [(name, f"{r['accuracy']:.3f}", f"{r['trust_separation']:.3f}",
          str(r["rotations"]), str(r["distinct_leaders"]))
         for name, r in results.items()],
    ))

    paper = results["rotation + TI hand-off (paper)"]
    amnesia = results["rotation + amnesia"]
    # Rotation actually happened in both runs.
    assert paper["distinct_leaders"] >= 10
    # The hand-off preserves (and keeps widening) the evidence gap.
    assert paper["trust_separation"] > amnesia["trust_separation"] + 0.1
    # And it pays off in detection accuracy under a 45% compromise.
    assert paper["accuracy"] >= amnesia["accuracy"]
