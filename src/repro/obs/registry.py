"""Run-wide metrics registry: counters, gauges, histograms, timers.

The registry is the numeric side of the observability layer (the
:mod:`repro.simkernel.trace` log is the event side).  Hot points across
the stack -- the radio channel, the CTI voter, the cluster head, the
sweep runner -- hold a registry reference and record into *named
instruments*:

* :class:`Counter` -- monotonically increasing event tallies
  (``radio.sent``, ``ch.decision.occurred``).
* :class:`Gauge` -- last-value measurements (``trust.code_table_size``).
* :class:`Histogram` -- distributions with exact count/sum/min/max and
  quantiles over a bounded sample reservoir (``trust.vote.margin``).
* :class:`Timer` -- a histogram of elapsed seconds with a context
  manager (``trust.vote.wall``).

Zero-overhead disabled path
---------------------------
Mirroring :func:`repro.simkernel.trace.noop_trace`, a disabled registry
(:data:`NULL_REGISTRY`, the sweep-runner default) costs callers one
attribute check: every emit site is written as::

    m = sim.metrics
    if m.enabled:
        m.counter("radio.sent").inc()

so thousands-of-runs sweeps never pay for instruments nobody reads.
Calling ``counter()`` / ``gauge()`` / ... on a disabled registry is
also safe -- it returns a shared no-op instrument -- but the guarded
form above is the hot-path convention.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TRUNCATED_COUNTER",
    "Timer",
]


#: Histograms retain at most this many raw observations for quantile
#: estimation; count/sum/min/max stay exact past the cap.
_RESERVOIR_MAX = 8192

#: Counter name under which :meth:`MetricsRegistry.snapshot` reports
#: how many histogram/timer reservoirs overflowed -- quantiles in those
#: snapshots cover only the first :data:`_RESERVOIR_MAX` samples, and a
#: metrics reader should not have to scan every record for the
#: ``truncated`` flag to notice.
TRUNCATED_COUNTER = "obs.reservoir.truncated"


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the tally."""
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Gauge:
    """A last-value measurement."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Histogram:
    """A distribution with exact aggregates and reservoir quantiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles are computed from the first :data:`_RESERVOIR_MAX` raw
    samples (``truncated`` flags when the reservoir overflowed).
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < _RESERVOIR_MAX:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Mean over every observation; ``nan`` when empty.

        A mean of nothing is undefined, and a silent 0.0 reads as a
        real measurement in downstream comparisons -- NaN propagates
        through arithmetic and fails every ordering check, so misuse
        surfaces instead of skewing a report.  ``snapshot()`` omits the
        field entirely for empty histograms (NaN is not strict JSON).
        """
        return self.sum / self.count if self.count else math.nan

    @property
    def truncated(self) -> bool:
        """True when quantiles no longer cover every observation."""
        return self.count > len(self._samples)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile from the retained samples.

        Raises ``ValueError`` when the histogram is empty: there is no
        sample to rank, and any sentinel would masquerade as data.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            raise ValueError(
                f"quantile of empty {self.kind} {self.name!r}"
            )
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(0, rank)]

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            out["mean"] = self.mean
            out["min"] = self.min
            out["max"] = self.max
            out["p50"] = self.quantile(0.5)
            out["p90"] = self.quantile(0.9)
            out["p99"] = self.quantile(0.99)
        if self.truncated:
            out["truncated"] = True
        return out


class Timer(Histogram):
    """A histogram of elapsed wall-clock seconds.

    Use either ``observe(seconds)`` directly or the ``time()`` context
    manager::

        with registry.timer("sweep.task.wall").time():
            task.run()
    """

    __slots__ = ()

    kind = "timer"

    def time(self) -> "_TimerContext":
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class _NullInstrument:
    """Shared sink for every instrument request on a disabled registry."""

    __slots__ = ()

    name = "<null>"
    kind = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullTimerContext":
        return _NULL_TIMER_CONTEXT


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self) -> "_NullTimerContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_TIMER_CONTEXT = _NullTimerContext()


class MetricsRegistry:
    """A namespace of named instruments with a no-op disabled state.

    Parameters
    ----------
    enabled:
        When False, every ``counter()`` / ``gauge()`` / ``histogram()``
        / ``timer()`` call returns a shared no-op instrument and the
        registry serialises to nothing.  Emit sites should check
        ``registry.enabled`` first so the disabled path is a single
        attribute read (the contract the disabled-path micro-bench in
        ``benchmarks/test_bench_kernel_throughput.py`` guards).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory: Callable[[str], object]) -> object:
        if not self.enabled:
            return _NULL_INSTRUMENT
        found = self._instruments.get(name)
        if found is None:
            found = factory(name)
            self._instruments[name] = found
        elif type(found) is not factory:
            raise ValueError(
                f"instrument {name!r} already registered as "
                f"{type(found).__name__}, requested {factory.__name__}"
            )
        return found

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first request)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        """The timer named ``name`` (created on first request)."""
        return self._get(name, Timer)  # type: ignore[return-value]

    def names(self) -> List[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        """The instrument named ``name``, or None."""
        return self._instruments.get(name)

    def truncated_names(self) -> List[str]:
        """Names of histograms/timers whose quantile reservoir overflowed."""
        return [
            name
            for name in self.names()
            if getattr(self._instruments[name], "truncated", False)
        ]

    def snapshot(self) -> List[Dict[str, object]]:
        """One serialisable record per instrument, sorted by name.

        These records are the ``metrics.jsonl`` lines; see
        :mod:`repro.obs.export` for the schema.  When any reservoir has
        overflowed, the :data:`TRUNCATED_COUNTER` counter is set to the
        overflow count first, so truncation shows up as a first-class
        record rather than only as per-histogram flags.
        """
        truncated = self.truncated_names()
        if truncated:
            # Assignment, not inc(): the overflow count is recomputed
            # from scratch each snapshot and only ever grows.
            self.counter(TRUNCATED_COUNTER).value = len(truncated)
        return [
            self._instruments[name].snapshot() for name in self.names()
        ]

    def merge_counters(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters into this one (sweep roll-up)."""
        for name in other.names():
            instrument = other.get(name)
            if isinstance(instrument, Counter):
                self.counter(name).inc(instrument.value)

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, instruments={len(self)})"


#: The shared disabled registry handed to everything that does not
#: opt into observability -- the metrics analogue of ``noop_trace()``.
NULL_REGISTRY = MetricsRegistry(enabled=False)
