"""Unit tests for the TI time-series probe."""

import numpy as np
import pytest

from repro.core.diagnosis import FaultDiagnoser
from repro.core.trust import TrustParameters, TrustTable
from repro.obs.probes import TrustProbe
from repro.obs.registry import MetricsRegistry


def make_table(n=4, lam=0.25, fault_rate=0.1):
    return TrustTable(
        TrustParameters(lam=lam, fault_rate=fault_rate), range(n)
    )


class TestSampling:
    def test_samples_accumulate_in_order(self):
        table = make_table()
        probe = TrustProbe(table)
        probe.sample(0.0)
        table.penalize(1)
        probe.sample(5.0)
        assert probe.n_samples == 2
        assert probe.times().tolist() == [0.0, 5.0]

    def test_snapshots_are_isolated_copies(self):
        table = make_table()
        probe = TrustProbe(table)
        probe.sample(0.0)
        table.penalize(0)
        probe.sample(1.0)
        _, tis = probe.trajectory(0)
        assert tis[0] == 1.0
        assert tis[1] < 1.0

    def test_trajectory_values_match_table(self):
        table = make_table()
        probe = TrustProbe(table)
        for t in range(3):
            table.penalize(2)
            probe.sample(float(t))
        _, tis = probe.trajectory(2)
        assert tis[-1] == table.ti(2)
        assert np.all(np.diff(tis) < 0)  # strictly decaying under penalty

    def test_unseen_node_defaults_to_full_trust(self):
        table = make_table(n=2)
        probe = TrustProbe(table)
        probe.sample(0.0)
        _, tis = probe.trajectory(999)
        assert tis.tolist() == [1.0]

    def test_registry_side_effects(self):
        table = make_table()
        registry = MetricsRegistry(enabled=True)
        probe = TrustProbe(table, registry)
        table.penalize(0)
        probe.sample(1.0)
        assert registry.counter("probe.samples").value == 1
        assert registry.gauge("trust.code_table_size").value == float(
            table.code_table_size()
        )

    def test_final_tis_empty_before_first_sample(self):
        probe = TrustProbe(make_table())
        assert probe.final_tis() == {}
        assert probe.node_ids() == ()


class TestCrossings:
    def test_crossing_time_uses_strict_less_than(self):
        table = make_table()
        probe = TrustProbe(table)
        probe.sample(0.0)
        threshold = table.ti(0)  # TI == threshold exactly: no crossing
        assert probe.crossing_time(0, threshold) is None

    def test_crossing_time_first_sample_below(self):
        table = make_table()
        probe = TrustProbe(table)
        probe.sample(0.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            table.penalize(1)
            probe.sample(t)
        threshold = 0.7
        crossing = probe.crossing_time(1, threshold)
        assert crossing is not None
        times, tis = probe.trajectory(1)
        first_below = times[np.argmax(tis < threshold)]
        assert crossing == first_below

    def test_diagnosis_times_from_diagnoser(self):
        table = make_table()
        diagnoser = FaultDiagnoser(table, ti_threshold=0.6, isolate=False)
        probe = TrustProbe(table, diagnoser=diagnoser)
        for t in (1.0, 2.0, 3.0):
            table.penalize(3)
            diagnoser.sweep(t)
            probe.sample(t)
        times = probe.diagnosis_times()
        assert set(times) == {3}
        # the probe saw TI below threshold no later than the diagnosis
        assert probe.crossing_time(3, 0.6) == times[3]


class TestRecords:
    def test_sample_records_use_string_node_keys(self):
        table = make_table(n=2)
        probe = TrustProbe(table)
        probe.sample(0.0)
        records = list(probe.to_records())
        assert len(records) == 1
        assert records[0]["type"] == "sample"
        assert set(records[0]["tis"]) == {"0", "1"}

    def test_diagnosis_records_follow_samples(self):
        table = make_table()
        diagnoser = FaultDiagnoser(table, ti_threshold=0.9, isolate=True)
        probe = TrustProbe(table, diagnoser=diagnoser)
        table.penalize(0)
        diagnoser.sweep(4.0)
        probe.sample(4.0)
        kinds = [r["type"] for r in probe.to_records()]
        assert kinds == ["sample", "diagnosis"]
        diag = list(probe.to_records())[-1]
        assert diag["node"] == 0
        assert diag["time"] == 4.0
        assert diag["isolated"] is True
        assert diag["ti"] == pytest.approx(table.ti(0))

    def test_ti_values_roundtrip_bit_identical_through_json(self):
        import json

        table = make_table()
        probe = TrustProbe(table)
        for _ in range(7):
            table.penalize(1)
            table.reward(2)
        probe.sample(1.0)
        line = json.dumps(list(probe.to_records())[0])
        back = json.loads(line)
        assert {int(k): v for k, v in back["tis"].items()} == table.tis()
