"""Sensing substrate: perception, event generation, and fault models.

* :mod:`repro.sensors.sensing`   -- how a node perceives an event: perfect
  binary detection within ``r_s`` plus Gaussian location noise (§2, §4.2).
* :mod:`repro.sensors.generator` -- ground-truth event generation: uniform
  random placement at regular intervals, with concurrent batches kept at
  least ``r_error`` apart (§4, §3.3).
* :mod:`repro.sensors.faults`    -- the paper's four node categories:
  correct (NER), level 0 naive liars, level 1 smart independent liars
  with TI hysteresis, and level 2 colluding liars (§2.1).
"""

from repro.sensors.faults import (
    CollusionCoordinator,
    CorrectBehavior,
    Level0Behavior,
    Level1Behavior,
    Level2Behavior,
    NodeBehavior,
    TrustEstimator,
)
from repro.sensors.generator import EventGenerator, GroundTruthEvent
from repro.sensors.node import SensorNode
from repro.sensors.sensing import SensingConfig, SensingModel

__all__ = [
    "CollusionCoordinator",
    "CorrectBehavior",
    "EventGenerator",
    "GroundTruthEvent",
    "Level0Behavior",
    "Level1Behavior",
    "Level2Behavior",
    "NodeBehavior",
    "SensingConfig",
    "SensingModel",
    "SensorNode",
    "TrustEstimator",
]
