"""Regenerate the golden fixtures: ``PYTHONPATH=src python -m tests.golden.generate``.

Overwrites ``tests/golden/<name>.json`` for every builder.  Run this
only after an intentional behaviour change, then review and commit the
diff -- the fixtures are the regression baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from tests.golden.builders import BUILDERS

FIXTURE_DIR = Path(__file__).resolve().parent


def main() -> int:
    for name, builder in sorted(BUILDERS.items()):
        path = FIXTURE_DIR / f"{name}.json"
        doc = builder()
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
