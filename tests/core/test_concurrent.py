"""Unit tests for concurrent-event circle tracking (§3.3)."""

import pytest

from repro.core.concurrent import CircleTracker
from repro.core.location import LocationReport
from repro.network.geometry import Point
from repro.simkernel.simulator import Simulator


def make_tracker(sim, r_error=5.0, t_out=1.0):
    groups = []
    tracker = CircleTracker(
        sim, r_error=r_error, t_out=t_out, on_group=groups.append
    )
    return tracker, groups


def report(node_id, x, y, t=0.0):
    return LocationReport(node_id=node_id, location=Point(x, y), time=t)


class TestCircleLifecycle:
    def test_first_report_opens_a_circle(self, sim):
        tracker, _ = make_tracker(sim)
        circle = tracker.on_report(report(0, 10.0, 10.0))
        assert circle.center == Point(10.0, 10.0)
        assert tracker.circles_opened == 1

    def test_nearby_report_joins_existing_circle(self, sim):
        tracker, _ = make_tracker(sim)
        c1 = tracker.on_report(report(0, 10.0, 10.0))
        c2 = tracker.on_report(report(1, 12.0, 11.0))
        assert c1 is c2
        assert len(c1.reports) == 2

    def test_distant_report_opens_new_circle(self, sim):
        tracker, _ = make_tracker(sim)
        c1 = tracker.on_report(report(0, 10.0, 10.0))
        c2 = tracker.on_report(report(1, 40.0, 40.0))
        assert c1 is not c2
        assert tracker.circles_opened == 2

    def test_circle_closes_after_t_out(self, sim):
        tracker, groups = make_tracker(sim, t_out=1.0)
        tracker.on_report(report(0, 10.0, 10.0))
        tracker.on_report(report(1, 11.0, 10.0))
        sim.run()
        assert len(groups) == 1
        assert [r.node_id for r in groups[0]] == [0, 1]
        assert tracker.groups_closed == 1

    def test_late_report_misses_closed_circle(self, sim):
        tracker, groups = make_tracker(sim, t_out=1.0)
        tracker.on_report(report(0, 10.0, 10.0, t=0.0))
        sim.run()  # closes at t=1
        tracker.on_report(report(1, 10.5, 10.0, t=sim.now))
        sim.run()
        assert len(groups) == 2  # the straggler formed its own group


class TestConcurrentEvents:
    def test_two_separated_events_close_independently(self, sim):
        tracker, groups = make_tracker(sim, r_error=5.0, t_out=1.0)
        tracker.on_report(report(0, 10.0, 10.0))
        sim.after(0.5, lambda: tracker.on_report(
            report(1, 60.0, 60.0, t=0.5)))
        sim.run()
        assert len(groups) == 2
        first_ids = {r.node_id for r in groups[0]}
        assert first_ids == {0}

    def test_overlapping_circles_wait_for_all_timers(self, sim):
        """§3.3 step 4: overlapping circles are processed as one union
        only after every member circle's T_out has elapsed."""
        tracker, groups = make_tracker(sim, r_error=5.0, t_out=1.0)
        # Two circles with centres 8 apart: overlap (< 2 * r_error).
        tracker.on_report(report(0, 10.0, 10.0, t=0.0))
        sim.after(0.8, lambda: tracker.on_report(
            report(1, 18.0, 10.0, t=0.8)))
        sim.run()
        assert len(groups) == 1
        assert {r.node_id for r in groups[0]} == {0, 1}
        # The union closed at the LATER circle's expiry (1.8), not 1.0.
        assert sim.now == pytest.approx(1.8)

    def test_chain_of_overlaps_closes_transitively(self, sim):
        tracker, groups = make_tracker(sim, r_error=5.0, t_out=1.0)
        tracker.on_report(report(0, 10.0, 10.0, t=0.0))
        sim.after(0.3, lambda: tracker.on_report(
            report(1, 18.0, 10.0, t=0.3)))
        sim.after(0.6, lambda: tracker.on_report(
            report(2, 26.0, 10.0, t=0.6)))
        sim.run()
        assert len(groups) == 1
        assert {r.node_id for r in groups[0]} == {0, 1, 2}

    def test_non_overlapping_groups_stay_apart(self, sim):
        tracker, groups = make_tracker(sim, r_error=5.0, t_out=1.0)
        tracker.on_report(report(0, 10.0, 10.0, t=0.0))
        tracker.on_report(report(1, 11.0, 10.0, t=0.0))
        tracker.on_report(report(2, 80.0, 80.0, t=0.0))
        sim.run()
        assert len(groups) == 2
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2]


class TestFlush:
    def test_flush_closes_open_circles_immediately(self, sim):
        tracker, groups = make_tracker(sim, t_out=100.0)
        tracker.on_report(report(0, 10.0, 10.0))
        tracker.on_report(report(1, 70.0, 70.0))
        tracker.flush()
        assert len(groups) == 2
        assert tracker.open_circles() == []

    def test_flush_on_empty_tracker_is_noop(self, sim):
        tracker, groups = make_tracker(sim)
        tracker.flush()
        assert groups == []


class TestValidation:
    def test_bad_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            CircleTracker(sim, r_error=0.0, t_out=1.0, on_group=print)
        with pytest.raises(ValueError):
            CircleTracker(sim, r_error=5.0, t_out=0.0, on_group=print)

    def test_reports_sorted_within_group(self, sim):
        tracker, groups = make_tracker(sim)
        tracker.on_report(report(5, 10.0, 10.0, t=0.0))
        tracker.on_report(report(2, 10.5, 10.0, t=0.0))
        sim.run()
        assert [r.node_id for r in groups[0]] == [2, 5]
