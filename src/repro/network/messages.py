"""Typed message payloads exchanged over the radio channel.

Every message the protocol sends is a small frozen dataclass.  Using
types (rather than dicts) keeps handler dispatch explicit and lets tests
assert on exact payloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.geometry import Point, PolarOffset

_message_ids = itertools.count(1)


def _next_message_id() -> int:
    return next(_message_ids)


def reset_message_ids(start: int = 1) -> None:
    """Rewind the process-global message-id stream (test isolation)."""
    global _message_ids
    _message_ids = itertools.count(start)


@dataclass(frozen=True)
class Message:
    """Base class for all network messages.

    Attributes
    ----------
    sender:
        Node id of the transmitting endpoint.
    message_id:
        Globally unique id assigned at construction; used for tracing and
        duplicate suppression.
    """

    sender: int
    message_id: int = field(default_factory=_next_message_id)


@dataclass(frozen=True)
class EventReportMessage(Message):
    """A sensing node's report of a detected event (§2, §3.2).

    For binary-event experiments ``offset`` is ``None`` and the report
    simply asserts "an event happened inside my sensing radius".  For
    location experiments ``offset`` is the event position as ``(r,
    theta)`` relative to the reporting node.
    """

    event_id: Optional[int] = None
    offset: Optional[PolarOffset] = None
    claimed: bool = True

    def resolve_location(self, node_position: Point) -> Optional[Point]:
        """Absolute event location implied by this report, if it has one."""
        if self.offset is None:
            return None
        return node_position.displace(self.offset)


@dataclass(frozen=True)
class ChAdvertisement(Message):
    """A self-elected cluster head announcing its leadership bid (LEACH)."""

    round_number: int = 0
    position: Optional[Point] = None
    signal_strength: float = 1.0


@dataclass(frozen=True)
class ChAffiliation(Message):
    """A node affiliating itself with an advertising cluster head."""

    chosen_ch: int = -1
    round_number: int = 0


@dataclass(frozen=True)
class ChDecisionAnnouncement(Message):
    """Cluster head's verdict on an event window.

    Broadcast so that (a) the base station learns of events, and (b)
    *smart* malicious nodes can observe outcomes to steer their own
    trust-index estimates.
    """

    decision_id: int = 0
    occurred: bool = False
    location: Optional[Point] = None
    reporters: Tuple[int, ...] = ()
    non_reporters: Tuple[int, ...] = ()

    def participant_sets(self) -> Tuple[frozenset, frozenset]:
        """``(reporters, non_reporters)`` as sets, built once per message.

        A broadcast hands the *same* announcement instance to every
        node in the cluster, and each receiver asks "am I in R / NR?".
        Linear tuple scans per receiver turn that into O(cluster^2) per
        decision; the lazily cached sets make it one hash probe.
        """
        sets = getattr(self, "_participant_sets", None)
        if sets is None:
            sets = (frozenset(self.reporters), frozenset(self.non_reporters))
            object.__setattr__(self, "_participant_sets", sets)
        return sets


@dataclass(frozen=True)
class TiTableTransfer(Message):
    """Trust-index table hand-off (outgoing CH -> base station -> new CH).

    The table maps node id to the accumulated fault variable ``v`` (the
    TI itself is derived, so shipping ``v`` preserves full state).
    """

    table: Dict[int, float] = field(default_factory=dict)
    cluster_id: int = 0
    round_number: int = 0


@dataclass(frozen=True)
class ScHDisagreement(Message):
    """Shadow cluster head's dissent escalated to the base station (§3.4)."""

    decision_id: int = 0
    occurred: bool = False
    location: Optional[Point] = None
    suspected_ch: int = -1


@dataclass(frozen=True)
class BsChVeto(Message):
    """Base station cancelling an under-trusted node's CH bid (§2)."""

    vetoed_node: int = -1
    round_number: int = 0
