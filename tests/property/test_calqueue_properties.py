"""Property-based differential tests: CalendarQueue vs. the heap oracle.

Hypothesis drives random operation streams -- schedule, cancel, pop,
``pop_next(until)``, peek -- through both scheduler backends and
asserts the observable traces are identical, shrinking any divergence
to a minimal counterexample.  Complements the fixed-seed scripts in
``tests/simkernel/test_calqueue_equivalence.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.calqueue import CalendarQueue
from repro.simkernel.events import EventQueue
from repro.simkernel.simulator import Simulator


def _noop():
    pass


# Sampled grid points collide often (the interesting case for tie
# order and the burst drain); the float tail covers bucket spread.
_times = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 2.5, 5.0, 100.0]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
_priorities = st.integers(min_value=-3, max_value=3)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times, _priorities),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=512)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("pop_until"), _times),
        st.tuples(st.just("peek")),
    ),
    max_size=100,
)


def _replay(queue_cls, ops):
    q = queue_cls()
    handles = []
    trace = []
    for op in ops:
        kind = op[0]
        if kind == "push":
            handles.append(
                q.push(op[1], _noop, priority=op[2], label=str(len(handles)))
            )
            trace.append(("len", len(q)))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
            trace.append(("len", len(q)))
        elif kind == "pop":
            try:
                e = q.pop()
                trace.append(("pop", e.time, e.priority, e.sequence, e.label))
            except IndexError:
                trace.append(("pop", "empty"))
        elif kind == "pop_until":
            e = q.pop_next(op[1])
            trace.append(
                ("pop_next", None)
                if e is None
                else ("pop_next", e.time, e.priority, e.sequence, e.label)
            )
        else:
            trace.append(("peek", q.peek_time()))
    while q:
        e = q.pop()
        trace.append(("drain", e.time, e.priority, e.sequence, e.label))
    return trace


@given(ops=_ops)
@settings(max_examples=120, deadline=None)
def test_op_stream_traces_identical(ops):
    assert _replay(CalendarQueue, ops) == _replay(EventQueue, ops)


@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.001, 0.5, 0.5, 2.0, 7.0]), _priorities
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_simulator_fire_order_identical(entries):
    """The fused run_loop (bursts included) fires in oracle order."""
    def run(backend):
        sim = Simulator(seed=0, queue=backend)
        trace = []
        for i, (delay, prio) in enumerate(entries):
            sim.after(
                delay, lambda i=i: trace.append((sim.now, i)), priority=prio
            )
        sim.run()
        return trace, sim.now, sim.events_fired

    assert run("calendar") == run("heap")


@given(
    intervals=st.lists(
        st.sampled_from([0.01, 0.013, 0.02]), min_size=1, max_size=5
    ),
    count=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_periodic_timer_streams_identical(intervals, count):
    """rearm's in-place re-arm matches the oracle's pop+push exactly."""
    def run(backend):
        sim = Simulator(seed=0, queue=backend)
        trace = []
        for i, interval in enumerate(intervals):
            sim.every(
                interval, lambda i=i: trace.append((sim.now, i)), count=count
            )
        sim.run()
        return trace, sim.now, sim.events_fired

    assert run("calendar") == run("heap")
