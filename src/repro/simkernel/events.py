"""Stable priority queue of scheduled simulation events.

Determinism contract
--------------------
Two events scheduled for the same simulation time fire in a total order
defined by ``(time, priority, sequence)``:

* lower ``priority`` first (default 0),
* ties broken by insertion order (``sequence``).

This makes every run a pure function of the seed set, which the TIBFIT
experiments rely on for reproducibility.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.simkernel.errors import SchedulingError


@dataclass(order=True)
class ScheduledEvent:
    """A single entry in the event queue.

    Ordering is by ``(time, priority, sequence)``; the callback and its
    arguments are excluded from comparisons.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")
    _queue: Optional["EventQueue"] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark this event so the loop skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded on pop.
        Cancelling twice is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue.note_cancelled()

    def fire(self) -> Any:
        """Invoke the callback with its stored arguments."""
        return self.callback(*self.args, **self.kwargs)


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter: Iterator[int] = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *,
        priority: int = 0,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation ``time``.

        Returns the :class:`ScheduledEvent` handle, which supports
        :meth:`ScheduledEvent.cancel`.
        """
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        if time != time:  # NaN check
            raise SchedulingError("cannot schedule an event at time NaN")
        event = ScheduledEvent(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
            kwargs=kwargs or {},
            label=label,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event.

        Raises ``IndexError`` when no live events remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for an externally cancelled event (bookkeeping only)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop all queued events."""
        self._heap.clear()
        self._live = 0
