"""Unit tests for planar geometry primitives."""

import math

import pytest

from repro.network.geometry import (
    Point,
    PolarOffset,
    Region,
    centroid,
    coords,
    distance,
    farthest_pair,
    midpoint,
    points_within,
    weighted_centroid,
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == b.distance_to(a)

    def test_offset_displace_roundtrip(self):
        a = Point(10.0, 20.0)
        b = Point(-3.5, 42.0)
        offset = a.offset_to(b)
        back = a.displace(offset)
        assert back.x == pytest.approx(b.x)
        assert back.y == pytest.approx(b.y)

    def test_offset_to_self_is_zero_range(self):
        p = Point(1.0, 1.0)
        assert p.offset_to(p).r == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_iter_and_tuple(self):
        p = Point(1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)

    def test_points_are_hashable_value_types(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2)}) == 1


class TestPolarOffset:
    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            PolarOffset(r=-1.0, theta=0.0)

    def test_normalised_wraps_theta(self):
        offset = PolarOffset(r=1.0, theta=3 * math.pi)
        norm = offset.normalised()
        assert -math.pi < norm.theta <= math.pi
        assert norm.theta == pytest.approx(math.pi)

    def test_normalised_preserves_displacement(self):
        origin = Point(0.0, 0.0)
        offset = PolarOffset(r=2.0, theta=7.5)
        a = origin.displace(offset)
        b = origin.displace(offset.normalised())
        assert a.x == pytest.approx(b.x)
        assert a.y == pytest.approx(b.y)


class TestRegion:
    def test_square_properties(self):
        r = Region.square(100.0)
        assert r.width == 100.0
        assert r.height == 100.0
        assert r.area == 10000.0
        assert r.center == Point(50.0, 50.0)

    def test_contains_includes_boundary(self):
        r = Region.square(10.0)
        assert r.contains(Point(0.0, 0.0))
        assert r.contains(Point(10.0, 10.0))
        assert not r.contains(Point(10.01, 5.0))

    def test_clamp_projects_outside_points(self):
        r = Region.square(10.0)
        assert r.clamp(Point(-5.0, 20.0)) == Point(0.0, 10.0)
        assert r.clamp(Point(5.0, 5.0)) == Point(5.0, 5.0)

    def test_degenerate_region_rejected(self):
        with pytest.raises(ValueError):
            Region(0.0, 0.0, -1.0, 5.0)

    def test_nonpositive_square_rejected(self):
        with pytest.raises(ValueError):
            Region.square(0.0)


class TestAggregates:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_centroid_mean_of_points(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c.x == pytest.approx(1.0)
        assert c.y == pytest.approx(1.0)

    def test_centroid_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_weighted_centroid_respects_weights(self):
        c = weighted_centroid([Point(0, 0), Point(10, 0)], [3.0, 1.0])
        assert c.x == pytest.approx(2.5)

    def test_weighted_centroid_validates_lengths(self):
        with pytest.raises(ValueError):
            weighted_centroid([Point(0, 0)], [1.0, 2.0])

    def test_weighted_centroid_rejects_zero_weight_sum(self):
        with pytest.raises(ValueError):
            weighted_centroid([Point(0, 0)], [0.0])

    def test_coords_splits_points(self):
        xs, ys = coords([Point(1.0, 2.0), Point(3.0, 4.0)])
        assert xs == [1.0, 3.0]
        assert ys == [2.0, 4.0]

    def test_farthest_pair(self):
        pts = [Point(0, 0), Point(1, 1), Point(10, 0), Point(2, 2)]
        assert farthest_pair(pts) == (0, 2)

    def test_farthest_pair_needs_two_points(self):
        with pytest.raises(ValueError):
            farthest_pair([Point(0, 0)])

    def test_points_within_inclusive(self):
        pts = [Point(0, 0), Point(3, 4), Point(6, 8)]
        inside = points_within(Point(0, 0), 5.0, pts)
        assert inside == [Point(0, 0), Point(3, 4)]

    def test_distance_helper_matches_method(self):
        a, b = Point(1, 2), Point(4, 6)
        assert distance(a, b) == a.distance_to(b)
