"""Unit tests for the cluster-head process."""

import pytest

from repro.clusterctl.head import ClusterHead, ClusterHeadConfig
from repro.core.trust import TrustParameters
from repro.network.geometry import Point, PolarOffset, Region
from repro.network.messages import (
    ChDecisionAnnouncement,
    EventReportMessage,
    TiTableTransfer,
)
from repro.network.node import NetworkNode
from repro.network.radio import ChannelConfig, RadioChannel
from repro.network.topology import Deployment
from repro.simkernel.simulator import Simulator


class Listener(NetworkNode):
    def __init__(self, node_id, position=Point(0.0, 0.0)):
        super().__init__(node_id, position)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def make_ch(mode="binary", n=4, use_trust=True, **config_kwargs):
    sim = Simulator(seed=1)
    channel = RadioChannel(
        sim, ChannelConfig(loss_probability=0.0, propagation_delay=0.001)
    )
    deployment = Deployment(region=Region.square(100.0))
    positions = [
        Point(45.0, 45.0), Point(55.0, 45.0),
        Point(45.0, 55.0), Point(55.0, 55.0),
        Point(20.0, 20.0), Point(80.0, 80.0),
    ]
    listeners = []
    for i in range(n):
        deployment.add(i, positions[i % len(positions)])
        listener = Listener(i, positions[i % len(positions)])
        channel.register(listener)
        listeners.append(listener)
    ch = ClusterHead(
        node_id=100,
        position=Point(50.0, 50.0),
        deployment=deployment,
        config=ClusterHeadConfig(
            mode=mode,
            t_out=1.0,
            sensing_radius=20.0,
            r_error=5.0,
            trust=TrustParameters(lam=0.25, fault_rate=0.1),
            use_trust=use_trust,
            **config_kwargs,
        ),
        base_station_id=None,
    )
    channel.register(ch)
    return sim, channel, ch, listeners


def binary_report(sender):
    return EventReportMessage(sender=sender, offset=None)


def location_report(sender, node_pos, event_pos):
    return EventReportMessage(
        sender=sender, offset=node_pos.offset_to(event_pos)
    )


class TestBinaryPipeline:
    def test_majority_reports_yield_occurred(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        assert len(ch.decisions) == 1
        d = ch.decisions[0]
        assert d.occurred
        assert d.supporters == (0, 1, 2)
        assert d.dissenters == (3,)

    def test_minority_reports_rejected(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        ch.on_message(binary_report(0))
        sim.run()
        assert not ch.decisions[0].occurred

    def test_window_closes_at_t_out(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        ch.on_message(binary_report(0))
        sim.run()
        assert ch.decisions[0].time == pytest.approx(1.0)

    def test_duplicate_reports_counted_once(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        ch.on_message(binary_report(0))
        ch.on_message(binary_report(0))
        sim.run()
        assert ch.decisions[0].supporters == (0,)

    def test_two_bursts_create_two_windows(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        for sender in (0, 1, 2, 3):
            ch.on_message(binary_report(sender))
        sim.run()
        assert len(ch.decisions) == 2
        assert ch.decisions[1].supporters == (0, 1, 2, 3)

    def test_trust_updates_applied(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        assert ch.trust.ti(3) < 1.0  # silent dissenter penalised
        assert ch.trust.ti(0) == 1.0  # winner (already at ceiling)

    def test_baseline_mode_keeps_trust_frozen(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4, use_trust=False)
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        assert ch.decisions[0].occurred
        assert all(ch.trust.ti(i) == 1.0 for i in range(4))


class TestLocationPipeline:
    def test_consensus_reports_locate_the_event(self):
        sim, _channel, ch, _l = make_ch(mode="location", n=4)
        event = Point(50.0, 50.0)
        for i, pos in enumerate(
            [Point(45.0, 45.0), Point(55.0, 45.0), Point(45.0, 55.0)]
        ):
            ch.on_message(location_report(i, pos, event))
        sim.run()
        ch.flush()
        occurred = [d for d in ch.decisions if d.occurred]
        assert len(occurred) == 1
        assert occurred[0].location.distance_to(event) < 0.5

    def test_binary_report_in_location_mode_is_dropped(self):
        sim, _channel, ch, _l = make_ch(mode="location", n=4)
        ch.on_message(binary_report(0))
        sim.run()
        ch.flush()
        assert ch.decisions == []
        assert sim.trace.count("ch.report.unplaceable") == 1

    def test_unknown_sender_ignored(self):
        sim, _channel, ch, _l = make_ch(mode="location", n=4)
        ch.on_message(
            EventReportMessage(
                sender=77, offset=PolarOffset(r=1.0, theta=0.0)
            )
        )
        sim.run()
        ch.flush()
        assert ch.decisions == []
        assert sim.trace.count("ch.report.unknown-node") == 1


class TestAnnouncements:
    def test_decision_broadcast_to_cluster(self):
        sim, _channel, ch, listeners = make_ch(mode="binary", n=4)
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        for listener in listeners:
            announcements = [
                m for m in listener.received
                if isinstance(m, ChDecisionAnnouncement)
            ]
            assert len(announcements) == 1
            assert announcements[0].occurred

    def test_announce_disabled_stays_silent(self):
        sim, _channel, ch, listeners = make_ch(
            mode="binary", n=4, announce=False
        )
        for sender in (0, 1, 2):
            ch.on_message(binary_report(sender))
        sim.run()
        assert all(not l.received for l in listeners)


class TestDiagnosisIntegration:
    def test_persistent_liar_gets_isolated(self):
        sim, _channel, ch, _l = make_ch(
            mode="binary", n=4, diagnosis_threshold=0.3
        )
        # Node 3 stays silent across many real events.
        for _ in range(6):
            for sender in (0, 1, 2):
                ch.on_message(binary_report(sender))
            sim.run()
        assert 3 in ch.diagnoser.diagnosed
        # Once isolated, node 3's reports are discarded.
        before = len(ch.decisions)
        ch.on_message(binary_report(3))
        sim.run()
        assert len(ch.decisions) == before  # no window was opened


class TestTiHandOff:
    def test_end_leadership_ships_table(self):
        sim, channel, ch, _l = make_ch(mode="binary", n=4)
        bs = Listener(999)
        channel.register(bs)
        ch.base_station_id = 999
        ch.trust.penalize(2)
        ch.end_leadership(round_number=5)
        sim.run()
        transfers = [
            m for m in bs.received if isinstance(m, TiTableTransfer)
        ]
        assert len(transfers) == 1
        assert transfers[0].table[2] > 0.0
        assert transfers[0].round_number == 5

    def test_incoming_transfer_merges_state(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        ch.on_message(
            TiTableTransfer(sender=999, table={1: 3.0}, cluster_id=0)
        )
        assert ch.trust.ti(1) == pytest.approx(
            ch.trust.params.ti_of(3.0)
        )

    def test_no_base_station_is_noop(self):
        sim, _channel, ch, _l = make_ch(mode="binary", n=4)
        ch.end_leadership()  # must not raise


class TestConfigValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ClusterHeadConfig(mode="hybrid")

    def test_invalid_t_out_rejected(self):
        with pytest.raises(ValueError):
            ClusterHeadConfig(t_out=0.0)
