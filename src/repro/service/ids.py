"""Explicit id allocation for reproducible sessions.

The DES layer historically drew decision ids from a process-global
``itertools.count`` -- convenient for cross-cluster uniqueness, but it
made runs reproducible only if every test remembered to reset the
stream by hand (the golden-provenance builder did exactly that).
:class:`IdAllocator` is the explicit replacement: a tiny resettable
counter that can be *owned*.  Each bare :class:`~repro.service.session.
TrustSession` defaults to its own allocator, so two sessions fed the
same report stream mint the same decision ids with no global state
involved; the DES cluster heads share one module-level allocator
(``repro.clusterctl.head._decision_ids``) to keep ids unique across
heads, and reset it through :func:`repro.clusterctl.head.
reset_decision_ids` instead of rebinding module globals.
"""

from __future__ import annotations

__all__ = ["IdAllocator"]


class IdAllocator:
    """A resettable monotonic id source (``next(alloc)`` yields ints).

    Drop-in for ``itertools.count`` on the allocation side -- the same
    ``next()`` protocol -- plus the two operations a count cannot do:
    :meth:`peek` (what id comes next, for state export) and
    :meth:`reset` (rewind, for state import and test isolation).
    """

    __slots__ = ("_next_id",)

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._next_id = start

    def __next__(self) -> int:
        value = self._next_id
        self._next_id = value + 1
        return value

    def __iter__(self) -> "IdAllocator":
        return self

    def peek(self) -> int:
        """The id the next ``next()`` call will return (no side effect)."""
        return self._next_id

    def reset(self, start: int = 1) -> None:
        """Rewind the stream so the next id is ``start``."""
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._next_id = start

    def __repr__(self) -> str:
        return f"IdAllocator(next={self._next_id})"
