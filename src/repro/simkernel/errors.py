"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or with bad arguments."""


class SimulationFinished(SimulationError):
    """Raised internally to signal an orderly stop of the event loop.

    User code normally never sees this; :meth:`Simulator.run` catches it.
    It is public so that process callbacks may raise it to abort a run
    from deep inside a callback without unwinding through custom handlers.
    """
