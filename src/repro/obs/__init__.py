"""Observability for the TIBFIT reproduction.

``repro.obs`` makes runs and sweeps *inspectable* without giving back
the speed the flat-array engines bought:

``repro.obs.registry``
    Named counters / gauges / histograms / timers with a zero-overhead
    disabled path (:data:`NULL_REGISTRY`), mirroring ``noop_trace``.
``repro.obs.probes``
    :class:`TrustProbe` -- per-node TI time series sampled at decision
    boundaries, with threshold-crossing queries.
``repro.obs.export``
    JSONL artifact writers, per-run manifests, and schema validators.
``repro.obs.spans``
    Causal point spans with parent links (:class:`SpanCollector`) and
    the zero-overhead disabled collector (:data:`NULL_SPANS`).
``repro.obs.provenance``
    :class:`ProvenanceIndex` -- walks span lineage to reconstruct the
    full evidence chain behind any CH verdict.
``repro.obs.profiling``
    ``TIBFIT_PROFILE`` sweep profiling: per-task wall time, DES / trust
    / clustering phase breakdown, :class:`SweepProfile` aggregation.

Entry points: ``SimulationRun(observe=True)`` threads a live registry
and probe through one run and ``export_artifacts()`` writes the JSONL
bundle (``spans=True`` adds spans / provenance / a Chrome trace);
``tibfit-repro trace`` does both from the command line;
``tibfit-repro explain`` renders one decision's causal chain; and
``python -m repro.obs.validate DIR`` checks an artifact directory
against the schemas.  See ``docs/observability.md``.
"""

from repro.obs.export import (
    MANIFEST_SCHEMA_VERSION,
    SchemaError,
    build_manifest,
    chrome_trace,
    read_jsonl,
    span_records,
    trace_records,
    validate_artifacts,
    validate_manifest,
    validate_metrics_record,
    validate_provenance_record,
    validate_span_record,
    validate_ti_record,
    write_json,
    write_jsonl,
)
from repro.obs.probes import TrustProbe
from repro.obs.provenance import ProvenanceIndex
from repro.obs.spans import NULL_SPANS, Span, SpanCollector
from repro.obs.profiling import (
    PROFILE_ENV,
    SweepProfile,
    TaskProfile,
    profiling_requested,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "PROFILE_ENV",
    "ProvenanceIndex",
    "SchemaError",
    "Span",
    "SpanCollector",
    "SweepProfile",
    "TaskProfile",
    "Timer",
    "TrustProbe",
    "build_manifest",
    "chrome_trace",
    "profiling_requested",
    "read_jsonl",
    "span_records",
    "trace_records",
    "validate_artifacts",
    "validate_manifest",
    "validate_metrics_record",
    "validate_provenance_record",
    "validate_span_record",
    "validate_ti_record",
    "write_json",
    "write_jsonl",
]
